"""The CDN observatory: turning the synthetic world into server logs.

This is the measurement instrument of the paper (Sec. 3.2): every day,
each client address that completes a WWW transaction appears in the
logs with its request count.  :class:`CDNObservatory` runs the world
day by day — applying scheduled restructurings, evolving the routing
table, sampling User-Agents — and emits the same aggregates the paper's
data-collection framework provides:

- an :class:`~repro.core.dataset.ActivityDataset` (daily or weekly
  windows),
- a :class:`~repro.routing.series.RoutingSeries` of daily RIB
  snapshots,
- a :class:`~repro.sim.useragents.UASampleStore` for the sampled
  User-Agent window,
- per-day assignment state on requested scan days (consumed by the
  ICMP scanner, which probes the same world).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import ActivityDataset, Snapshot
from repro.errors import ConfigError
from repro.routing.series import RoutingSeries
from repro.routing.table import RoutingTable
from repro.sim.policies import AddressPolicy, DayActivity, PolicyKind
from repro.sim.population import InternetPopulation
from repro.sim.restructure import (
    RestructureEvent,
    RestructureSchedule,
    build_schedule,
)
from repro.sim.useragents import UASampleStore, sample_uas
from repro.sim.util import hash_coin

#: Salt selecting the fixed login-trace panel of subscribers.
_LOGIN_PANEL_SALT = 0x106B4BE1

#: Offset added to an AS number to form its post-event sibling origin.
_SIBLING_ASN_OFFSET = 30000


@dataclass
class CollectionResult:
    """Everything one observatory run produces."""

    dataset: ActivityDataset
    routing: RoutingSeries
    schedule: RestructureSchedule
    ua_store: UASampleStore | None
    scan_states: dict[int, dict[int, tuple[PolicyKind, np.ndarray]]] = field(
        default_factory=dict
    )
    final_kinds: dict[int, PolicyKind] = field(default_factory=dict)
    #: Per day, the (addresses, user ids) of panel subscribers seen
    #: that day; ``None`` unless a login panel was requested.
    login_trace: list[tuple[np.ndarray, np.ndarray]] | None = None

    @property
    def num_days(self) -> int:
        return self.schedule.num_days


class CDNObservatory:
    """Runs the world and collects logs, deterministically per config."""

    def __init__(self, population: InternetPopulation) -> None:
        self.population = population
        self.config = population.config

    # -- public API --------------------------------------------------------

    def collect_daily(
        self,
        num_days: int,
        ua_window: tuple[int, int] | None = None,
        scan_days: tuple[int, ...] = (),
        login_panel_rate: float = 0.0,
    ) -> CollectionResult:
        """Run *num_days* days and return daily snapshots.

        ``login_panel_rate`` > 0 additionally records a login trace — a
        per-day (address, user) sample for a fixed panel of subscribers
        — the input shape of UDmap-style dynamic-address inference
        (Xie et al., discussed in the paper's related work).
        """
        return self._collect(num_days, 1, ua_window, scan_days, login_panel_rate)

    def collect_weekly(
        self,
        num_weeks: int,
        ua_window: tuple[int, int] | None = None,
        scan_days: tuple[int, ...] = (),
    ) -> CollectionResult:
        """Run ``7 * num_weeks`` days, aggregating each week on the fly.

        Weekly aggregation happens during collection (the union of a
        week's active addresses, summed hits), so a year-long run never
        materialises per-day columns — the same shape as the paper's
        weekly dataset (Table 1).
        """
        return self._collect(num_weeks * 7, 7, ua_window, scan_days, 0.0)

    # -- internals -----------------------------------------------------------

    def _collect(
        self,
        num_days: int,
        window_days: int,
        ua_window: tuple[int, int] | None,
        scan_days: tuple[int, ...],
        login_panel_rate: float = 0.0,
    ) -> CollectionResult:
        if not 0.0 <= login_panel_rate <= 1.0:
            raise ConfigError(f"login_panel_rate must be a probability: {login_panel_rate}")
        if num_days <= 0 or num_days % window_days:
            raise ConfigError(
                f"num_days={num_days} must be a positive multiple of window_days={window_days}"
            )
        if ua_window is not None:
            first, last = ua_window
            if not 0 <= first <= last < num_days:
                raise ConfigError(f"ua_window {ua_window} outside run of {num_days} days")
        for day in scan_days:
            if not 0 <= day < num_days:
                raise ConfigError(f"scan day {day} outside run of {num_days} days")

        population = self.population
        config = self.config
        root = np.random.SeedSequence([config.seed, 0xC011EC7])
        schedule_seed, noise_seed, ua_seed = root.spawn(3)
        schedule = build_schedule(
            population, num_days, np.random.default_rng(schedule_seed)
        )
        events_by_day = schedule.by_day()
        noise_rng = np.random.default_rng(noise_seed)
        ua_rng = np.random.default_rng(ua_seed)

        # Every block gets a policy (even UNUSED — an event may turn it on).
        policies: dict[int, AddressPolicy] = {
            block.index: block.make_policy(config) for block in population.blocks
        }
        current_kinds = {block.index: block.kind for block in population.blocks}

        routing_tables: list[RoutingTable] = []
        current_table = population.baseline_routing()
        self._preannounce_event_covers(schedule, current_table)

        ua_store = UASampleStore() if ua_window is not None else None
        login_trace: list[tuple[np.ndarray, np.ndarray]] | None = (
            [] if login_panel_rate > 0 else None
        )
        scan_states: dict[int, dict[int, tuple[PolicyKind, np.ndarray]]] = {}
        scan_day_set = set(scan_days)

        snapshots: list[Snapshot] = []
        window_ips: list[np.ndarray] = []
        window_hits: list[np.ndarray] = []
        window_start = config.start_date

        for day in range(num_days):
            date = config.start_date + datetime.timedelta(days=day)
            day_of_week = date.weekday()
            traffic_scale = config.traffic_weekly_growth ** (day / 7.0)

            table_changed = False
            for event in events_by_day.get(day, ()):
                self._apply_event(event, policies, current_kinds)
                if event.bgp_visible:
                    if not table_changed:
                        current_table = current_table.copy()
                        table_changed = True
                    self._apply_bgp_effect(event, current_table, noise_rng)
            current_table, table_changed = self._apply_bgp_noise(
                current_table, noise_rng, table_changed
            )
            if table_changed or not routing_tables:
                routing_tables.append(current_table)
            else:
                routing_tables.append(routing_tables[-1])

            day_ips: list[np.ndarray] = []
            day_hits: list[np.ndarray] = []
            trace_ips: list[np.ndarray] = []
            trace_users: list[np.ndarray] = []
            in_ua_window = ua_window is not None and ua_window[0] <= day <= ua_window[1]
            for block in population.blocks:
                policy = policies[block.index]
                activity = policy.day_activity(day_of_week, traffic_scale)
                if activity.offsets.size:
                    day_ips.append(block.base + activity.offsets.astype(np.uint32))
                    day_hits.append(activity.hits)
                    if in_ua_window:
                        self._sample_uas(block.base, current_kinds[block.index], activity, ua_rng, ua_store)
                    if login_trace is not None and activity.sub_ids.size:
                        panel = hash_coin(activity.sub_ids, _LOGIN_PANEL_SALT, login_panel_rate)
                        if panel.any():
                            trace_ips.append(
                                (block.base + activity.sub_offsets[panel]).astype(np.uint32)
                            )
                            trace_users.append(activity.sub_ids[panel])
            if login_trace is not None:
                if trace_ips:
                    login_trace.append(
                        (np.concatenate(trace_ips), np.concatenate(trace_users))
                    )
                else:
                    login_trace.append(
                        (np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.int64))
                    )
            if day in scan_day_set:
                scan_states[day] = {
                    block.index: (
                        current_kinds[block.index],
                        policies[block.index].assigned_offsets(),
                    )
                    for block in population.blocks
                }

            window_ips.extend(day_ips)
            window_hits.extend(day_hits)
            if (day + 1) % window_days == 0:
                snapshots.append(
                    _window_snapshot(window_start, window_days, window_ips, window_hits)
                )
                window_ips, window_hits = [], []
                window_start = date + datetime.timedelta(days=1)

        return CollectionResult(
            dataset=ActivityDataset(snapshots),
            routing=RoutingSeries(routing_tables),
            schedule=schedule,
            ua_store=ua_store,
            scan_states=scan_states,
            final_kinds=current_kinds,
            login_trace=login_trace,
        )

    def _apply_event(
        self,
        event: RestructureEvent,
        policies: dict[int, AddressPolicy],
        current_kinds: dict[int, PolicyKind],
    ) -> None:
        for index in event.block_indexes:
            block = self.population.blocks[index]
            new_kind = event.new_policy_kind
            assert new_kind is not None
            policies[index] = block.make_policy(self.config, kind=new_kind, salt=event.salt)
            current_kinds[index] = new_kind

    def _apply_bgp_effect(
        self,
        event: RestructureEvent,
        table: RoutingTable,
        rng: np.random.Generator,
    ) -> None:
        """Realise an event's routing footprint on the live table.

        The footprint is always the event's covering prefix (which was
        pre-announced for origin/withdraw effects), so a routing change
        never spills over onto addresses the event did not touch.
        """
        cover = self.schedule_cover(event)
        first_block = self.population.blocks[event.block_indexes[0]]
        if event.bgp_effect == "announce":
            if table.origin_of_prefix(cover) is None:
                table.announce(cover, first_block.asn)
            else:
                table.announce(cover, first_block.asn + _SIBLING_ASN_OFFSET)
        elif event.bgp_effect == "withdraw":
            if cover in table:
                table.withdraw(cover)
        elif event.bgp_effect == "origin":
            old = table.origin_of_prefix(cover)
            if old is None:
                table.announce(cover, first_block.asn + _SIBLING_ASN_OFFSET)
            else:
                table.announce(cover, old + _SIBLING_ASN_OFFSET)

    def _preannounce_event_covers(
        self, schedule: RestructureSchedule, table: RoutingTable
    ) -> None:
        """Announce, at day 0, the cover prefixes of events whose BGP
        footprint needs an existing route (origin change, withdraw).

        The pre-announcement uses the block's own AS, so day-0 origin
        attribution is unchanged; the event day then produces exactly
        one ORIGIN_CHANGE or WITHDRAW on that prefix.
        """
        for event in schedule.events:
            if event.bgp_effect not in ("origin", "withdraw"):
                continue
            cover = self.schedule_cover(event)
            if table.origin_of_prefix(cover) is None:
                asn = self.population.blocks[event.block_indexes[0]].asn
                table.announce(cover, asn)

    def schedule_cover(self, event: RestructureEvent):
        """Smallest prefix covering an event's blocks (helper for tests)."""
        ips = []
        for index in event.block_indexes:
            base = self.population.blocks[index].base
            ips.extend((base, base + 255))
        from repro.net.prefix import smallest_covering_prefix

        return smallest_covering_prefix(np.asarray(ips, dtype=np.uint32))

    def _apply_bgp_noise(
        self,
        table: RoutingTable,
        rng: np.random.Generator,
        already_copied: bool,
    ) -> tuple[RoutingTable, bool]:
        """Unrelated background routing churn (rare, Fig. 5c baseline).

        Returns ``(table, changed)``; the table is copied first when
        this day's snapshot has not been forked from yesterday's yet.
        """
        probability = self.config.bgp_background_daily
        if probability <= 0:
            return table, already_copied
        count = rng.binomial(len(table), probability)
        if count == 0:
            return table, already_copied
        if not already_copied:
            table = table.copy()
        prefixes = table.prefixes()
        for _ in range(int(count)):
            prefix = prefixes[int(rng.integers(0, len(prefixes)))]
            origin = table.origin_of_prefix(prefix)
            if origin is None:
                continue
            roll = rng.random()
            if roll < 0.6:
                table.announce(prefix, origin + _SIBLING_ASN_OFFSET)
            elif roll < 0.8:
                table.withdraw(prefix)
            else:
                subnets = list(prefix.subnets(min(prefix.masklen + 1, 32)))
                table.announce(subnets[0], origin)
        return table, True

    def _sample_uas(
        self,
        block_base: int,
        kind: PolicyKind,
        activity: DayActivity,
        rng: np.random.Generator,
        store: UASampleStore | None,
    ) -> None:
        if store is None or activity.sub_ids.size == 0:
            return
        ua_ids = sample_uas(
            rng,
            activity.sub_ids,
            activity.sub_hits,
            self.config.ua_sample_rate,
            bot_profile=(kind is PolicyKind.CRAWLER),
        )
        store.add(block_base, ua_ids)


def _window_snapshot(
    start: datetime.date,
    days: int,
    ips_parts: list[np.ndarray],
    hits_parts: list[np.ndarray],
) -> Snapshot:
    """Merge day columns into one deduplicated, hit-summed snapshot."""
    if not ips_parts:
        return Snapshot(start, days, np.empty(0, dtype=np.uint32))
    ips = np.concatenate(ips_parts)
    hits = np.concatenate(hits_parts).astype(np.float64)
    order = np.argsort(ips, kind="stable")
    ips = ips[order]
    hits = hits[order]
    boundary = np.empty(ips.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = ips[1:] != ips[:-1]
    group = np.cumsum(boundary) - 1
    summed = np.bincount(group, weights=hits)
    return Snapshot(start, days, ips[boundary], summed.astype(np.uint64))
