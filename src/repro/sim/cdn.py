"""The CDN observatory: turning the synthetic world into server logs.

This is the measurement instrument of the paper (Sec. 3.2): every day,
each client address that completes a WWW transaction appears in the
logs with its request count.  :class:`CDNObservatory` runs the world
day by day — applying scheduled restructurings, evolving the routing
table, sampling User-Agents — and emits the same aggregates the paper's
data-collection framework provides:

- an :class:`~repro.core.dataset.ActivityDataset` (daily or weekly
  windows),
- a :class:`~repro.routing.series.RoutingSeries` of daily RIB
  snapshots,
- a :class:`~repro.sim.useragents.UASampleStore` for the sampled
  User-Agent window,
- per-day assignment state on requested scan days (consumed by the
  ICMP scanner, which probes the same world).

The observatory is split into a coordinator (this module: schedule,
BGP noise, routing-table evolution) and the sharded block-simulation
engine (:mod:`repro.sim.engine`), which runs the per-/24 policy loops
across worker processes.  ``collect_daily(..., workers=N)`` produces
bit-identical output for every ``N`` — see the engine's docstring for
the determinism contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.errors import ConfigError
from repro.obs import context as obs_api
from repro.obs.context import ObsContext
from repro.routing.series import RoutingSeries
from repro.routing.table import RoutingTable
from repro.sim.engine import (
    COLLECT_STREAM_SALT,
    Directive,
    FaultInjection,
    PerfCounters,
    run_sharded_collection,
)
from repro.sim.policies import PolicyKind
from repro.sim.population import InternetPopulation
from repro.sim.restructure import (
    RestructureEvent,
    RestructureSchedule,
    build_schedule,
)
from repro.sim.scenario import Perturbation, Scenario, compile_scenario
from repro.sim.useragents import UASampleStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import DatasetStore

#: Offset added to an AS number to form its post-event sibling origin.
_SIBLING_ASN_OFFSET = 30000


def _schedule_cover(population: InternetPopulation, event: RestructureEvent):
    """Smallest prefix covering an event's blocks."""
    ips = []
    for index in event.block_indexes:
        base = population.blocks[index].base
        ips.extend((base, base + 255))
    from repro.net.prefix import smallest_covering_prefix

    return smallest_covering_prefix(np.asarray(ips, dtype=np.uint32))


@dataclass
class CollectionPlan:
    """The coordinator-only inputs of one collection run.

    Built once per run by :func:`plan_collection` — the schedule and
    noise streams are spawned exactly as every prior release spawned
    them, so a plan consumed by the batch engine and a plan consumed
    interval by interval by the live service drive identical runs.
    """

    schedule: RestructureSchedule
    directives: tuple[Directive, ...]
    noise_rng: np.random.Generator
    #: Compiled scenario hit-volume windows (``()`` without a scenario).
    perturbations: tuple[Perturbation, ...] = ()


def plan_collection(
    population: InternetPopulation,
    num_days: int,
    scenario: Scenario | None = None,
) -> CollectionPlan:
    """Derive one run's schedule, directives, and noise stream.

    This is the deterministic preamble of every collection run: the
    root stream is keyed by ``(seed, COLLECT_STREAM_SALT)``, the
    schedule is drawn first, and the noise stream is the second child —
    the exact spawn order of the historical single-threaded releases,
    which the golden-run digest pins.

    A *scenario* (:mod:`repro.sim.scenario`) is compiled *after* that
    preamble, against the schedule's own directives, and consumes no
    RNG — so a run with an empty timeline is bit-identical to a run
    with no scenario at all, and scenario directives appended after the
    schedule's win same-day conflicts exactly as the engine applies
    them.  Scenario events are BGP-invisible: the routing evolution
    sees only the schedule, so the RIB series is scenario-independent.
    """
    config = population.config
    root = np.random.SeedSequence([config.seed, COLLECT_STREAM_SALT])
    # Three children keep the schedule and noise streams identical
    # to earlier single-threaded releases; the third seeded the
    # retired shared UA stream (UA draws are now per block, keyed
    # by block index — see engine.block_ua_rng).
    schedule_seed, noise_seed, _retired_ua_seed = root.spawn(3)
    schedule = build_schedule(
        population, num_days, np.random.default_rng(schedule_seed)
    )
    noise_rng = np.random.default_rng(noise_seed)
    directives: list[Directive] = []
    for event in schedule.events:
        assert event.new_policy_kind is not None
        for index in event.block_indexes:
            directives.append(
                (event.day, index, event.new_policy_kind.value, event.salt)
            )
    perturbations: tuple[Perturbation, ...] = ()
    if scenario is not None and scenario.events:
        scenario_plan = compile_scenario(
            scenario, population, num_days, tuple(directives)
        )
        directives.extend(scenario_plan.directives)
        perturbations = scenario_plan.perturbations
    return CollectionPlan(
        schedule=schedule,
        directives=tuple(directives),
        noise_rng=noise_rng,
        perturbations=perturbations,
    )


class RoutingEvolution:
    """Day-by-day routing-table evolution (coordinator-only state).

    Consumes the schedule's BGP-visible events and the background noise
    stream, one day per :meth:`step` — the batch coordinator steps it
    through the whole horizon at once, the live service steps it one
    interval at a time, and both walks produce the identical table
    series (every draw comes from the plan's noise stream in day
    order).

    Consecutive unchanged days share the *same* table object; the RIB
    series renderer relies on that identity for its ``=== day N same``
    compression.
    """

    def __init__(
        self,
        population: InternetPopulation,
        schedule: RestructureSchedule,
        noise_rng: np.random.Generator,
    ) -> None:
        self._population = population
        self._config = population.config
        self._events_by_day = schedule.by_day()
        self._noise_rng = noise_rng
        self._current = population.baseline_routing()
        self._preannounce_event_covers(schedule, self._current)
        self.tables: list[RoutingTable] = []

    @property
    def days_done(self) -> int:
        return len(self.tables)

    def step(self) -> RoutingTable:
        """Evolve one day; append and return that day's table."""
        day = len(self.tables)
        table_changed = False
        for event in self._events_by_day.get(day, ()):
            if event.bgp_visible:
                if not table_changed:
                    self._current = self._current.copy()
                    table_changed = True
                self._apply_bgp_effect(event, self._current, self._noise_rng)
        self._current, table_changed = self._apply_bgp_noise(
            self._current, self._noise_rng, table_changed
        )
        if table_changed or not self.tables:
            self.tables.append(self._current)
        else:
            self.tables.append(self.tables[-1])
        return self.tables[-1]

    def run(self, num_days: int) -> list[RoutingTable]:
        """Step through *num_days* days and return the table series."""
        for _ in range(num_days):
            self.step()
        return self.tables

    def _apply_bgp_effect(
        self,
        event: RestructureEvent,
        table: RoutingTable,
        rng: np.random.Generator,
    ) -> None:
        """Realise an event's routing footprint on the live table.

        The footprint is always the event's covering prefix (which was
        pre-announced for origin/withdraw effects), so a routing change
        never spills over onto addresses the event did not touch.
        """
        cover = _schedule_cover(self._population, event)
        first_block = self._population.blocks[event.block_indexes[0]]
        if event.bgp_effect == "announce":
            if table.origin_of_prefix(cover) is None:
                table.announce(cover, first_block.asn)
            else:
                table.announce(cover, first_block.asn + _SIBLING_ASN_OFFSET)
        elif event.bgp_effect == "withdraw":
            if cover in table:
                table.withdraw(cover)
        elif event.bgp_effect == "origin":
            old = table.origin_of_prefix(cover)
            if old is None:
                table.announce(cover, first_block.asn + _SIBLING_ASN_OFFSET)
            else:
                table.announce(cover, old + _SIBLING_ASN_OFFSET)

    def _preannounce_event_covers(
        self, schedule: RestructureSchedule, table: RoutingTable
    ) -> None:
        """Announce, at day 0, the cover prefixes of events whose BGP
        footprint needs an existing route (origin change, withdraw).

        The pre-announcement uses the block's own AS, so day-0 origin
        attribution is unchanged; the event day then produces exactly
        one ORIGIN_CHANGE or WITHDRAW on that prefix.
        """
        for event in schedule.events:
            if event.bgp_effect not in ("origin", "withdraw"):
                continue
            cover = _schedule_cover(self._population, event)
            if table.origin_of_prefix(cover) is None:
                asn = self._population.blocks[event.block_indexes[0]].asn
                table.announce(cover, asn)

    def _apply_bgp_noise(
        self,
        table: RoutingTable,
        rng: np.random.Generator,
        already_copied: bool,
    ) -> tuple[RoutingTable, bool]:
        """Unrelated background routing churn (rare, Fig. 5c baseline).

        Returns ``(table, changed)``; the table is copied first when
        this day's snapshot has not been forked from yesterday's yet.
        """
        probability = self._config.bgp_background_daily
        if probability <= 0:
            return table, already_copied
        count = rng.binomial(len(table), probability)
        if count == 0:
            return table, already_copied
        if not already_copied:
            table = table.copy()
        prefixes = table.prefixes()
        for _ in range(int(count)):
            prefix = prefixes[int(rng.integers(0, len(prefixes)))]
            origin = table.origin_of_prefix(prefix)
            if origin is None:
                continue
            roll = rng.random()
            if roll < 0.6:
                table.announce(prefix, origin + _SIBLING_ASN_OFFSET)
            elif roll < 0.8:
                table.withdraw(prefix)
            else:
                subnets = list(prefix.subnets(min(prefix.masklen + 1, 32)))
                table.announce(subnets[0], origin)
        return table, True


@dataclass
class CollectionResult:
    """Everything one observatory run produces.

    Exactly one of :attr:`dataset` and :attr:`store` is set: with a
    ``store_dir`` the dataset is written shard by shard to an
    out-of-core store (:mod:`repro.core.store`) and never assembled in
    memory.
    """

    dataset: ActivityDataset | None
    routing: RoutingSeries
    schedule: RestructureSchedule
    ua_store: UASampleStore | None
    scan_states: dict[int, dict[int, tuple[PolicyKind, np.ndarray]]] = field(
        default_factory=dict
    )
    final_kinds: dict[int, PolicyKind] = field(default_factory=dict)
    #: Per day, the (addresses, user ids) of panel subscribers seen
    #: that day; ``None`` unless a login panel was requested.
    login_trace: list[tuple[np.ndarray, np.ndarray]] | None = None
    #: Wall-clock and throughput counters of the run.
    perf: PerfCounters | None = None
    #: The finalized out-of-core store, when a ``store_dir`` was given.
    store: "DatasetStore | None" = None

    @property
    def num_days(self) -> int:
        return self.schedule.num_days


class CDNObservatory:
    """Runs the world and collects logs, deterministically per config."""

    def __init__(self, population: InternetPopulation) -> None:
        self.population = population
        self.config = population.config

    # -- public API --------------------------------------------------------

    def collect_daily(
        self,
        num_days: int,
        ua_window: tuple[int, int] | None = None,
        scan_days: tuple[int, ...] = (),
        login_panel_rate: float = 0.0,
        workers: int = 1,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fault: FaultInjection | None = None,
        obs: ObsContext | None = None,
        progress=None,
        store_dir: str | None = None,
        store_shard_blocks: int = 256,
        scenario: Scenario | None = None,
    ) -> CollectionResult:
        """Run *num_days* days and return daily snapshots.

        ``scenario`` injects a declarative timeline of exogenous events
        (:mod:`repro.sim.scenario`) — outages, CGNAT consolidation,
        lockdown shifts, scanner storms — compiled deterministically
        into directives and hit-volume perturbations.  An empty
        timeline (or ``None``) leaves the run bit-identical to a
        scenario-free one.

        ``login_panel_rate`` > 0 additionally records a login trace — a
        per-day (address, user) sample for a fixed panel of subscribers
        — the input shape of UDmap-style dynamic-address inference
        (Xie et al., discussed in the paper's related work).

        ``workers`` > 1 shards the block simulation across that many
        processes; the output is bit-identical to ``workers=1``.

        Failed workers are retried up to ``max_retries`` times before
        the shard degrades to in-process execution.  With
        ``checkpoint_dir`` set, finished shards are checkpointed
        atomically; ``resume=True`` loads matching checkpoints and
        simulates only the remainder — the restarted run's output is
        bit-identical to an uninterrupted one.  ``fault`` installs a
        deterministic :class:`~repro.sim.engine.FaultInjection` plan
        (tests/CI only).

        ``obs`` (an :class:`~repro.obs.context.ObsContext`) records the
        run's spans, counters, and events — see
        :func:`~repro.sim.engine.run_sharded_collection`; ``progress``
        is called with one :class:`~repro.sim.engine.ShardProgress` per
        finished shard.  Neither affects the collected output.

        ``store_dir`` writes the dataset as an out-of-core sharded
        store (``store_shard_blocks`` /24s per shard) instead of
        assembling it in memory; the result then carries ``store``
        instead of ``dataset``.
        """
        return self._collect(
            num_days,
            1,
            ua_window,
            scan_days,
            login_panel_rate,
            workers,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            fault=fault,
            obs=obs,
            progress=progress,
            store_dir=store_dir,
            store_shard_blocks=store_shard_blocks,
            scenario=scenario,
        )

    def collect_weekly(
        self,
        num_weeks: int,
        ua_window: tuple[int, int] | None = None,
        scan_days: tuple[int, ...] = (),
        workers: int = 1,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fault: FaultInjection | None = None,
        obs: ObsContext | None = None,
        progress=None,
        store_dir: str | None = None,
        store_shard_blocks: int = 256,
        scenario: Scenario | None = None,
    ) -> CollectionResult:
        """Run ``7 * num_weeks`` days, aggregating each week on the fly.

        Weekly aggregation happens during collection (the union of a
        week's active addresses, summed hits), so a year-long run never
        materialises per-day columns — the same shape as the paper's
        weekly dataset (Table 1).  Retry, checkpoint, and resume
        behave exactly as in :meth:`collect_daily`.
        """
        return self._collect(
            num_weeks * 7,
            7,
            ua_window,
            scan_days,
            0.0,
            workers,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            fault=fault,
            obs=obs,
            progress=progress,
            store_dir=store_dir,
            store_shard_blocks=store_shard_blocks,
            scenario=scenario,
        )

    # -- internals -----------------------------------------------------------

    def _collect(
        self,
        num_days: int,
        window_days: int,
        ua_window: tuple[int, int] | None,
        scan_days: tuple[int, ...],
        login_panel_rate: float = 0.0,
        workers: int = 1,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        fault: FaultInjection | None = None,
        obs: ObsContext | None = None,
        progress=None,
        store_dir: str | None = None,
        store_shard_blocks: int = 256,
        scenario: Scenario | None = None,
    ) -> CollectionResult:
        if not 0.0 <= login_panel_rate <= 1.0:
            raise ConfigError(f"login_panel_rate must be a probability: {login_panel_rate}")
        if num_days <= 0 or num_days % window_days:
            raise ConfigError(
                f"num_days={num_days} must be a positive multiple of window_days={window_days}"
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1: {workers}")
        if ua_window is not None:
            first, last = ua_window
            if not 0 <= first <= last < num_days:
                raise ConfigError(f"ua_window {ua_window} outside run of {num_days} days")
        for day in scan_days:
            if not 0 <= day < num_days:
                raise ConfigError(f"scan day {day} outside run of {num_days} days")

        total_start = time.perf_counter()
        population = self.population
        plan = plan_collection(population, num_days, scenario=scenario)
        schedule = plan.schedule

        routing_start = time.perf_counter()
        with obs_api.maybe_activate(obs), obs_api.span("collect/routing"):
            routing_tables = RoutingEvolution(
                population, schedule, plan.noise_rng
            ).run(num_days)
        routing_seconds = time.perf_counter() - routing_start

        outcome = run_sharded_collection(
            population,
            num_days=num_days,
            window_days=window_days,
            ua_window=ua_window,
            scan_days=scan_days,
            login_panel_rate=login_panel_rate,
            directives=plan.directives,
            perturbations=plan.perturbations,
            workers=workers,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            fault=fault,
            obs=obs,
            progress=progress,
            store_dir=store_dir,
            store_shard_blocks=store_shard_blocks,
        )
        perf = outcome.perf
        perf.routing_seconds = routing_seconds
        perf.total_seconds = time.perf_counter() - total_start
        if obs is not None:
            obs.absorb_perf_counters(perf)

        return CollectionResult(
            dataset=(
                None if outcome.store is not None
                else ActivityDataset(outcome.snapshots)
            ),
            routing=RoutingSeries(routing_tables),
            schedule=schedule,
            ua_store=outcome.ua_store,
            scan_states=outcome.scan_states,
            final_kinds=outcome.final_kinds,
            login_trace=outcome.login_trace,
            perf=perf,
            store=outcome.store,
        )

    def schedule_cover(self, event: RestructureEvent):
        """Smallest prefix covering an event's blocks (helper for tests)."""
        return _schedule_cover(self.population, event)
