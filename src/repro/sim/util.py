"""Deterministic hashing helpers for the simulator.

Several simulated properties must be *stable functions of identity*
rather than fresh random draws: whether a given address answers ICMP
(the same host is firewalled or not, scan after scan), how many devices
a subscriber owns, which User-Agent strings those devices emit.  These
helpers derive uniform values from integer identities with a splitmix-
style avalanche, so the property is reproducible without storing it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _mix(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finaliser: avalanche uint64 values."""
    z = values + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def hash_unit(ids: np.ndarray | int, salt: int) -> np.ndarray:
    """Uniform floats in [0, 1) deterministically derived from ids.

    The same ``(id, salt)`` pair always yields the same value; different
    salts give independent streams.
    """
    with np.errstate(over="ignore"):
        arr = np.atleast_1d(np.asarray(ids)).astype(np.uint64)
        mixed = _mix(arr ^ _mix(np.asarray([salt], dtype=np.uint64)))
    return (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def hash_coin(ids: np.ndarray | int, salt: int, probability: float) -> np.ndarray:
    """Deterministic Bernoulli draws: True with the given probability."""
    return hash_unit(ids, salt) < probability


def hash_int(ids: np.ndarray | int, salt: int, upper: int) -> np.ndarray:
    """Deterministic integers in [0, upper)."""
    if upper <= 0:
        raise ConfigError(f"upper bound must be positive: {upper}")
    return (hash_unit(ids, salt) * upper).astype(np.int64)
