"""Address-assignment policies: how one /24 block behaves day by day.

Section 5 of the paper attributes the striking variety of /24 activity
patterns (Fig. 6) to the interplay of *address assignment practice* and
*user behaviour*.  Each policy class here is the generative counterpart
of one observed pattern:

- :class:`StaticPolicy` — fixed subscriber→address mapping, sparse
  filling degree (Fig. 6a).
- :class:`RoundRobinPolicy` — a cycling pool assigning consecutive
  addresses, high filling degree but low utilization (Fig. 6b).
- :class:`DynamicLongLeasePolicy` — DHCP with long leases: subscribers
  hold addresses for weeks (Fig. 6c).
- :class:`DynamicShortLeasePolicy` — ≤24h leases: subscribers land on
  a fresh address almost daily, near-complete filling (Fig. 6d).
- :class:`GatewayPolicy` — a handful of CGN/proxy addresses
  aggregating thousands of subscribers: maximal utilization, huge
  traffic, huge User-Agent diversity (Sec. 6).
- :class:`CrawlerPolicy` — bots: huge traffic, one User-Agent.
- :class:`ServerPolicy` / :class:`RouterPolicy` — infrastructure that
  rarely or never contacts the CDN but answers probes (Sec. 3.3).
- :class:`UnusedPolicy` — routed but idle space.

A policy is a stateful day-by-day generator: calling
:meth:`AddressPolicy.day_activity` for consecutive days yields the
block's active offsets, per-address hit counts, and the subscriber
attribution needed for User-Agent sampling.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.sim.behavior import (
    daily_hits,
    draw_engagement,
    hit_medians,
    hits_from_medians,
    scaled_activity_probability,
    weekday_factor,
)
from repro.sim.config import SimulationConfig
from repro.sim.util import hash_int

BLOCK_SIZE = 256

#: Log-normal width of a crawler's day-to-day traffic volume.
_CRAWLER_SIGMA = 0.4

#: Memoized weekday-factor tables, keyed by (day-of-weeks, network
#: type, weekend factors) — a pure function of the key, shared by
#: every block simulating the same horizon.  Bounded; cleared when it
#: would outgrow any plausible working set.
_FACTOR_TABLES: dict[tuple, list[float]] = {}


class PolicyKind(enum.Enum):
    """The assignment-practice taxonomy used throughout the library."""

    STATIC = "static"
    DYNAMIC_SHORT = "dynamic_short"
    DYNAMIC_LONG = "dynamic_long"
    ROUND_ROBIN = "round_robin"
    GATEWAY = "gateway"
    CRAWLER = "crawler"
    SERVER = "server"
    ROUTER = "router"
    UNUSED = "unused"


#: Kinds whose addresses act as WWW clients (appear in CDN logs).
CLIENT_KINDS = frozenset(
    {
        PolicyKind.STATIC,
        PolicyKind.DYNAMIC_SHORT,
        PolicyKind.DYNAMIC_LONG,
        PolicyKind.ROUND_ROBIN,
        PolicyKind.GATEWAY,
        PolicyKind.CRAWLER,
    }
)

#: Kinds counted as dynamic assignment (for ground-truth comparisons).
DYNAMIC_KINDS = frozenset(
    {PolicyKind.DYNAMIC_SHORT, PolicyKind.DYNAMIC_LONG, PolicyKind.ROUND_ROBIN}
)


@dataclass
class DayActivity:
    """One block-day of CDN-visible activity.

    ``offsets``/``hits`` are per *address* (offset within the /24);
    the ``sub_*`` arrays are per active *subscriber* and carry the
    attribution needed to sample User-Agents (a gateway address
    aggregates many subscribers).
    """

    offsets: np.ndarray
    hits: np.ndarray
    sub_ids: np.ndarray
    sub_hits: np.ndarray
    sub_offsets: np.ndarray

    @classmethod
    def empty(cls) -> "DayActivity":
        return cls(
            offsets=np.empty(0, dtype=np.int64),
            hits=np.empty(0, dtype=np.int64),
            sub_ids=np.empty(0, dtype=np.int64),
            sub_hits=np.empty(0, dtype=np.int64),
            sub_offsets=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_subscribers(
        cls, sub_ids: np.ndarray, sub_hits: np.ndarray, sub_offsets: np.ndarray
    ) -> "DayActivity":
        """Aggregate per-subscriber rows into per-address rows."""
        if sub_ids.size == 0:
            return cls.empty()
        per_offset = np.bincount(sub_offsets, weights=sub_hits, minlength=BLOCK_SIZE)
        offsets = np.flatnonzero(per_offset)
        return cls(
            offsets=offsets.astype(np.int64),
            hits=per_offset[offsets].astype(np.int64),
            sub_ids=sub_ids.astype(np.int64),
            sub_hits=sub_hits.astype(np.int64),
            sub_offsets=sub_offsets.astype(np.int64),
        )


@dataclass
class DaysActivity:
    """A whole horizon of block activity in columnar (CSR) layout.

    The batched counterpart of a sequence of :class:`DayActivity`
    values: day ``d``'s subscriber rows live at
    ``[day_starts[d], day_starts[d + 1])`` of the three row arrays, in
    exactly the order the scalar :meth:`AddressPolicy.day_activity`
    would have produced them — that row-order contract is what lets
    downstream per-day consumers (User-Agent sampling) draw identical
    streams from either path.

    ``snapshots`` maps a relative day index to a private copy of
    :meth:`AddressPolicy.assigned_offsets` as of the *end* of that day
    (after any lease churn), matching a scalar caller that snapshots
    between two ``day_activity`` calls.
    """

    day_starts: np.ndarray
    sub_ids: np.ndarray
    sub_hits: np.ndarray
    sub_offsets: np.ndarray
    snapshots: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_days(self) -> int:
        return int(self.day_starts.size - 1)

    def day_slice(self, day: int) -> slice:
        """Row range of one relative day."""
        return slice(int(self.day_starts[day]), int(self.day_starts[day + 1]))


def _day_starts(counts: Sequence[int]) -> np.ndarray:
    starts = np.zeros(len(counts) + 1, dtype=np.int64)
    if counts:
        np.cumsum(np.asarray(counts, dtype=np.int64), out=starts[1:])
    return starts


def _concat_rows(parts: Sequence[np.ndarray], dtype: type = np.int64) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts)


def _silent_days(num_days: int, snapshots: dict[int, np.ndarray]) -> DaysActivity:
    """A horizon with no CDN-visible activity (infrastructure blocks)."""
    return DaysActivity(
        day_starts=np.zeros(num_days + 1, dtype=np.int64),
        sub_ids=np.empty(0, dtype=np.int64),
        sub_hits=np.empty(0, dtype=np.int64),
        sub_offsets=np.empty(0, dtype=np.int64),
        snapshots=snapshots,
    )


class AddressPolicy(abc.ABC):
    """Base class: a stateful per-/24 activity generator."""

    kind: ClassVar[PolicyKind]

    def __init__(self, rng: np.random.Generator, network_type: str, config: SimulationConfig) -> None:
        self._rng = rng
        self.network_type = network_type
        self._config = config

    @abc.abstractmethod
    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        """Advance one day and return the block's CDN activity."""

    @abc.abstractmethod
    def assigned_offsets(self) -> np.ndarray:
        """Offsets currently holding an assignment (probe-relevant)."""

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        """Advance ``len(day_of_weeks)`` days in one batched call.

        The contract: for the same starting state, the returned rows
        for day ``d`` are element-wise identical to what ``d + 1``
        scalar :meth:`day_activity` calls would have produced on day
        ``d``, the policy's internal RNG finishes in the identical
        state, and ``snapshots[d]`` equals an
        :meth:`assigned_offsets` call made right after day ``d``.

        This base implementation simply loops the scalar path — always
        correct, never fast.  The built-in policies override it with
        kernels that make bit-identical RNG calls day by day but defer
        every deterministic computation (hit medians, log-normal
        ``exp``, traffic scaling, aggregation) to single array ops
        over the whole horizon.
        """
        _, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        counts: list[int] = []
        ids: list[np.ndarray] = []
        hits: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        for day, day_of_week in enumerate(day_of_weeks):
            activity = self.day_activity(int(day_of_week), float(traffic_scales[day]))
            counts.append(int(activity.sub_ids.size))
            ids.append(activity.sub_ids)
            hits.append(activity.sub_hits)
            offs.append(activity.sub_offsets)
            if day in wanted:
                snapshots[day] = self.assigned_offsets().copy()
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=_concat_rows(hits),
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )

    def _prepare_days(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int],
    ) -> tuple[list[float], set[int]]:
        """Validate a horizon: per-day weekday factors + snapshot days."""
        num_days = len(day_of_weeks)
        if num_days != len(traffic_scales):
            raise ConfigError(
                "day_of_weeks and traffic_scales must have equal length: "
                f"{num_days} != {len(traffic_scales)}"
            )
        config = self._config
        key = (
            tuple(day_of_weeks),
            self.network_type,
            config.weekend_residential_factor,
            config.weekend_work_factor,
        )
        factors = _FACTOR_TABLES.get(key)
        if factors is None:
            factors = [
                weekday_factor(
                    int(day_of_week),
                    self.network_type,
                    config.weekend_residential_factor,
                    config.weekend_work_factor,
                )
                for day_of_week in day_of_weeks
            ]
            if len(_FACTOR_TABLES) > 256:
                _FACTOR_TABLES.clear()
            _FACTOR_TABLES[key] = factors
        wanted = {int(day) for day in snapshot_days}
        for day in wanted:
            if not 0 <= day < num_days:
                raise ConfigError(
                    f"snapshot day {day} outside horizon [0, {num_days})"
                )
        return factors, wanted

    @property
    def subscriber_count(self) -> int:
        """Subscribers currently served by this block (0 for infra)."""
        return 0

    @property
    def scan_category(self) -> str:
        """How the scanner models this block: client/server/router/none."""
        if self.kind in CLIENT_KINDS:
            return "client"
        return "none"


class _SubscriberPool:
    """Shared subscriber bookkeeping: engagement, identity, turnover."""

    def __init__(
        self,
        rng: np.random.Generator,
        count: int,
        sub_base: int,
        turnover_daily: float,
    ) -> None:
        if count <= 0:
            raise ConfigError(f"subscriber count must be positive: {count}")
        self._rng = rng
        self.engagement = draw_engagement(rng, count)
        # Median daily hits are a pure element-wise function of
        # engagement, so the cache is maintained incrementally at churn
        # (bit-identical to a full recompute) and the hot path never
        # evaluates exp() for stable subscribers.
        self.median_hits = hit_medians(self.engagement)
        self.sub_ids = sub_base + np.arange(count, dtype=np.int64)
        self._count = count  # fixed for the pool's lifetime
        self._next_id = sub_base + count
        self._turnover_daily = turnover_daily
        # Per-weekday-factor activity probabilities, refreshed lazily:
        # churn only records the dirty indexes, and the next access
        # recomputes those entries from the then-current engagement —
        # an element-wise function, so the batched refresh matches
        # eager per-churn updates bit for bit.
        self._probs: dict[float, np.ndarray] = {}
        self._dirty: dict[float, list[np.ndarray]] = {}

    def __len__(self) -> int:
        return self._count

    def turn_over(self) -> np.ndarray:
        """Replace a random sliver of subscribers (new tenants).

        Returns the indexes that turned over, so policies can decide
        whether the address mapping follows the line (static) or the
        pool (dynamic).
        """
        churned = (self._rng.random(self._count) < self._turnover_daily).nonzero()[0]
        if churned.size == 0:
            return churned
        fresh = draw_engagement(self._rng, churned.size)
        self.engagement[churned] = fresh
        self.median_hits[churned] = hit_medians(fresh)
        self.sub_ids[churned] = self._next_id + np.arange(churned.size)
        self._next_id += churned.size
        for dirty in self._dirty.values():
            dirty.append(churned)
        return churned

    def _probabilities(self, factor: float) -> np.ndarray:
        probs = self._probs.get(factor)
        if probs is None:
            probs = scaled_activity_probability(self.engagement, factor)
            self._probs[factor] = probs
            self._dirty[factor] = []
            return probs
        dirty = self._dirty[factor]
        if dirty:
            idx = dirty[0] if len(dirty) == 1 else np.concatenate(dirty)
            # Duplicate indexes are fine: every entry resolves to the
            # same element-wise function of the current engagement.
            probs[idx] = scaled_activity_probability(self.engagement[idx], factor)
            dirty.clear()
        return probs

    def active_for(self, factor: float) -> np.ndarray:
        """Indexes of subscribers active under a known weekday factor."""
        return (self._rng.random(self._count) < self._probabilities(factor)).nonzero()[0]

    def active_today(self, day_of_week: int, network_type: str, config: SimulationConfig) -> np.ndarray:
        """Indexes of subscribers active today."""
        factor = weekday_factor(
            day_of_week,
            network_type,
            config.weekend_residential_factor,
            config.weekend_work_factor,
        )
        return self.active_for(factor)

    def hits_for(self, indexes: np.ndarray) -> np.ndarray:
        return daily_hits(self.engagement[indexes], self._rng)


class StaticPolicy(AddressPolicy):
    """Fixed one-to-one subscriber→address assignment (Fig. 6a).

    Filling degree equals the subscriber count — typically well under
    64 addresses, the paper's signature of static assignment (Fig. 8b).
    """

    kind = PolicyKind.STATIC

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(8, 80))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, size=count, replace=False))

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()  # line keeps its address; tenant changes
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active],
            self._pool.hits_for(active),
            self._offsets[active],
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        pool = self._pool
        counts: list[int] = []
        ids: list[np.ndarray] = []
        med: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        normals: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        for day, factor in enumerate(factors):
            # RNG order per day, as in day_activity: turnover coins,
            # activity coins, one normal per active subscriber.
            pool.turn_over()
            active = pool.active_for(factor)
            normals.append(self._rng.standard_normal(active.size))
            counts.append(int(active.size))
            ids.append(pool.sub_ids[active])
            med.append(pool.median_hits[active])
            offs.append(self._offsets[active])
            if day in wanted:
                snapshots[day] = self._offsets.copy()
        sub_hits = hits_from_medians(
            _concat_rows(med, np.float64), _concat_rows(normals, np.float64)
        )
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=sub_hits,
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class DynamicShortLeasePolicy(AddressPolicy):
    """DHCP with a ≤24h maximum lease (Fig. 6d).

    Every day, active subscribers draw fresh addresses from the pool,
    so over weeks nearly every address in the block is used at least
    once: filling degree ≈ 256 regardless of concurrency.
    """

    kind = PolicyKind.DYNAMIC_SHORT

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(230, 380))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._last_offsets = np.empty(0, dtype=np.int64)

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._last_offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        if active.size > BLOCK_SIZE:
            active = self._rng.choice(active, size=BLOCK_SIZE, replace=False)
        offsets = self._rng.permutation(BLOCK_SIZE)[: active.size]
        self._last_offsets = np.sort(offsets)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active], self._pool.hits_for(active), offsets
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        pool = self._pool
        counts: list[int] = []
        ids: list[np.ndarray] = []
        med: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        normals: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        last_offsets = self._last_offsets
        for day, factor in enumerate(factors):
            pool.turn_over()
            active = pool.active_for(factor)
            if active.size > BLOCK_SIZE:
                active = self._rng.choice(active, size=BLOCK_SIZE, replace=False)
            offsets = self._rng.permutation(BLOCK_SIZE)[: active.size]
            normals.append(self._rng.standard_normal(active.size))
            counts.append(int(active.size))
            ids.append(pool.sub_ids[active])
            med.append(pool.median_hits[active])
            offs.append(offsets)
            last_offsets = offsets  # sorting deferred to snapshot/exit
            if day in wanted:
                snapshots[day] = np.sort(last_offsets)
        # Restore the scalar invariant before returning: assigned
        # offsets reflect the last simulated day.
        self._last_offsets = np.sort(last_offsets)
        sub_hits = hits_from_medians(
            _concat_rows(med, np.float64), _concat_rows(normals, np.float64)
        )
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=sub_hits,
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class DynamicLongLeasePolicy(AddressPolicy):
    """DHCP with a long lease (Fig. 6c).

    Subscribers hold their address for weeks; a small daily probability
    moves a subscriber to a new free address.  Heavily engaged
    subscribers produce near-continuous rows in the activity matrix,
    casual ones sparse rows — the texture of Fig. 6c.
    """

    kind = PolicyKind.DYNAMIC_LONG

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(140, 250))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._sub_offsets = rng.permutation(BLOCK_SIZE)[:count]
        self._lease_churn_daily = float(rng.uniform(1 / 60, 1 / 15))

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return np.sort(self._sub_offsets)

    def _free_offsets(self) -> np.ndarray:
        """Unassigned offsets, ascending — a fast ``setdiff1d``.

        ``flatnonzero`` over an occupancy mask returns the same sorted
        unique complement ``np.setdiff1d(np.arange(BLOCK_SIZE), ...)``
        would, without the sort of a 256-element range every day.
        """
        taken = np.zeros(BLOCK_SIZE, dtype=bool)
        taken[self._sub_offsets] = True
        return np.flatnonzero(~taken)

    def _reassign_leases(self) -> None:
        moving = np.flatnonzero(self._rng.random(len(self._pool)) < self._lease_churn_daily)
        if moving.size == 0:
            return
        free = self._free_offsets()
        if free.size == 0:
            return
        self._rng.shuffle(free)
        takeable = min(moving.size, free.size)
        self._sub_offsets[moving[:takeable]] = free[:takeable]

    def _churn_tenants(self, churned: np.ndarray) -> None:
        """A new tenant gets a fresh lease, i.e. a new address."""
        free = self._free_offsets()
        self._rng.shuffle(free)
        takeable = min(churned.size, free.size)
        self._sub_offsets[churned[:takeable]] = free[:takeable]

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        churned = self._pool.turn_over()
        if churned.size:
            self._churn_tenants(churned)
        self._reassign_leases()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active],
            self._pool.hits_for(active),
            self._sub_offsets[active],
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        pool = self._pool
        counts: list[int] = []
        ids: list[np.ndarray] = []
        med: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        normals: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        for day, factor in enumerate(factors):
            churned = pool.turn_over()
            if churned.size:
                self._churn_tenants(churned)
            self._reassign_leases()
            active = pool.active_for(factor)
            normals.append(self._rng.standard_normal(active.size))
            counts.append(int(active.size))
            ids.append(pool.sub_ids[active])
            med.append(pool.median_hits[active])
            offs.append(self._sub_offsets[active])
            if day in wanted:
                snapshots[day] = np.sort(self._sub_offsets)
        sub_hits = hits_from_medians(
            _concat_rows(med, np.float64), _concat_rows(normals, np.float64)
        )
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=sub_hits,
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class RoundRobinPolicy(AddressPolicy):
    """A cycling assignment pool (Fig. 6b).

    Few concurrent subscribers, but the pool pointer advances daily, so
    consecutive addresses light up in a marching diagonal band: filling
    degree reaches 256 while spatio-temporal utilization stays low —
    the paper's canonical under-utilized dynamic pool.
    """

    kind = PolicyKind.ROUND_ROBIN

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(40, 95))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._pointer = int(rng.integers(0, BLOCK_SIZE))
        self._advance = int(rng.integers(2, 9))
        self._last_offsets = np.empty(0, dtype=np.int64)

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._last_offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        offsets = (self._pointer + np.arange(active.size)) % BLOCK_SIZE
        self._pointer = (self._pointer + self._advance) % BLOCK_SIZE
        self._last_offsets = np.sort(np.unique(offsets))
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active], self._pool.hits_for(active), offsets
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        pool = self._pool
        counts: list[int] = []
        ids: list[np.ndarray] = []
        med: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        normals: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        last_offsets = self._last_offsets
        for day, factor in enumerate(factors):
            pool.turn_over()
            active = pool.active_for(factor)
            offsets = (self._pointer + np.arange(active.size)) % BLOCK_SIZE
            self._pointer = (self._pointer + self._advance) % BLOCK_SIZE
            normals.append(self._rng.standard_normal(active.size))
            counts.append(int(active.size))
            ids.append(pool.sub_ids[active])
            med.append(pool.median_hits[active])
            offs.append(offsets)
            last_offsets = offsets  # dedup/sort deferred to snapshot/exit
            if day in wanted:
                snapshots[day] = np.sort(np.unique(last_offsets))
        self._last_offsets = np.sort(np.unique(last_offsets))
        sub_hits = hits_from_medians(
            _concat_rows(med, np.float64), _concat_rows(normals, np.float64)
        )
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=sub_hits,
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class GatewayPolicy(AddressPolicy):
    """CGN / proxy gateways: few addresses, thousands of users (Sec. 6).

    The gateway addresses are active every day, carry aggregate traffic
    orders of magnitude above a residential line, and exhibit huge
    User-Agent diversity — the top-right region of Fig. 10.
    """

    kind = PolicyKind.GATEWAY

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        # CGN egress ranges fill most of a /24 with translator
        # addresses, each aggregating many users — the paper's fully
        # utilized, traffic-heavy gateway blocks (Secs. 5.3 and 6).
        self._num_gateways = int(rng.integers(128, 257))
        self._gw_offsets = np.sort(rng.choice(BLOCK_SIZE, self._num_gateways, replace=False))
        count = int(rng.integers(2000, 12000))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._salt = int(rng.integers(0, 2**31))
        # Per-subscriber egress offset — a pure element-wise hash of
        # the subscriber id, so the cache is rehashed only at churn
        # (bit-identical to hashing every row every day).
        self._sub_gw_offsets = self._gw_offsets[
            hash_int(self._pool.sub_ids, self._salt, self._num_gateways)
        ]

    def _rehash(self, churned: np.ndarray) -> None:
        self._sub_gw_offsets[churned] = self._gw_offsets[
            hash_int(self._pool.sub_ids[churned], self._salt, self._num_gateways)
        ]

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._gw_offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        churned = self._pool.turn_over()
        if churned.size:
            self._rehash(churned)
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        hits = self._pool.hits_for(active)
        hits = np.maximum(1, (hits * traffic_scale).astype(np.int64))
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active], hits, self._sub_gw_offsets[active]
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        pool = self._pool
        counts: list[int] = []
        ids: list[np.ndarray] = []
        med: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        normals: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        for day, factor in enumerate(factors):
            churned = pool.turn_over()
            if churned.size:
                self._rehash(churned)
            active = pool.active_for(factor)
            normals.append(self._rng.standard_normal(active.size))
            counts.append(int(active.size))
            ids.append(pool.sub_ids[active])
            med.append(pool.median_hits[active])
            offs.append(self._sub_gw_offsets[active])
            if day in wanted:
                snapshots[day] = self._gw_offsets.copy()
        hits = hits_from_medians(
            _concat_rows(med, np.float64), _concat_rows(normals, np.float64)
        )
        # Per-row traffic scale: int64 * float64 is the same element-wise
        # multiply the scalar path performs with a python-float scale.
        scale_rows = np.repeat(np.asarray(traffic_scales, dtype=np.float64), counts)
        sub_hits = np.maximum(1, (hits * scale_rows).astype(np.int64))
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=sub_hits,
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class CrawlerPolicy(AddressPolicy):
    """WWW client bots: massive request volume, one User-Agent each.

    The bottom-right region of Fig. 10: very many samples, very few
    unique User-Agent strings.
    """

    kind = PolicyKind.CRAWLER

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(2, 8))
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, count, replace=False))
        self._bot_ids = sub_base + np.arange(count, dtype=np.int64)
        self._median_hits = rng.uniform(5e4, 2e5, size=count)

    @property
    def subscriber_count(self) -> int:
        return int(self._bot_ids.size)

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        active = np.flatnonzero(self._rng.random(self._bot_ids.size) < 0.985)
        # exp(0.4 * N(0,1)) consumes the same bitstream as lognormal(0, 0.4)
        # and is the shared math of the batched days_activity path.
        normals = self._rng.standard_normal(active.size)
        hits = self._median_hits[active] * np.exp(_CRAWLER_SIGMA * normals)
        hits = np.maximum(1, (hits * traffic_scale).astype(np.int64))
        return DayActivity.from_subscribers(
            self._bot_ids[active], hits, self._offsets[active]
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        counts: list[int] = []
        ids: list[np.ndarray] = []
        medians: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        normals: list[np.ndarray] = []
        snapshots: dict[int, np.ndarray] = {}
        for day in range(len(factors)):
            active = (self._rng.random(self._bot_ids.size) < 0.985).nonzero()[0]
            normals.append(self._rng.standard_normal(active.size))
            counts.append(int(active.size))
            ids.append(self._bot_ids[active])
            medians.append(self._median_hits[active])
            offs.append(self._offsets[active])
            if day in wanted:
                snapshots[day] = self._offsets.copy()
        hits = _concat_rows(medians, np.float64) * np.exp(
            _CRAWLER_SIGMA * _concat_rows(normals, np.float64)
        )
        scale_rows = np.repeat(np.asarray(traffic_scales, dtype=np.float64), counts)
        sub_hits = np.maximum(1, (hits * scale_rows).astype(np.int64))
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=sub_hits,
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class ServerPolicy(AddressPolicy):
    """Servers: answer probes, almost never appear as WWW clients.

    A minority of server blocks fetch software updates via the WWW
    (paper Sec. 3.3), producing faint, sporadic CDN activity.
    """

    kind = PolicyKind.SERVER

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(4, 64))
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, count, replace=False))
        self._ids = sub_base + np.arange(count, dtype=np.int64)
        self._fetches_updates = bool(rng.random() < 0.15)

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    @property
    def scan_category(self) -> str:
        return "server"

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        if not self._fetches_updates:
            return DayActivity.empty()
        active = np.flatnonzero(self._rng.random(self._offsets.size) < 0.03)
        if active.size == 0:
            return DayActivity.empty()
        hits = self._rng.integers(1, 20, size=active.size).astype(np.int64)
        return DayActivity.from_subscribers(
            self._ids[active], hits, self._offsets[active]
        )

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        factors, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        num_days = len(factors)
        snapshots = {day: self._offsets.copy() for day in wanted}
        if not self._fetches_updates:
            # The scalar path consumes no RNG for these blocks either.
            return _silent_days(num_days, snapshots)
        counts: list[int] = []
        ids: list[np.ndarray] = []
        hits: list[np.ndarray] = []
        offs: list[np.ndarray] = []
        for _ in range(num_days):
            active = (self._rng.random(self._offsets.size) < 0.03).nonzero()[0]
            counts.append(int(active.size))
            if active.size == 0:
                # Scalar path returns empty *before* drawing hit counts.
                continue
            hits.append(self._rng.integers(1, 20, size=active.size).astype(np.int64))
            ids.append(self._ids[active])
            offs.append(self._offsets[active])
        return DaysActivity(
            day_starts=_day_starts(counts),
            sub_ids=_concat_rows(ids),
            sub_hits=_concat_rows(hits),
            sub_offsets=_concat_rows(offs),
            snapshots=snapshots,
        )


class RouterPolicy(AddressPolicy):
    """Router interface addresses: visible to traceroute/ICMP only."""

    kind = PolicyKind.ROUTER

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(2, 33))
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, count, replace=False))

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    @property
    def scan_category(self) -> str:
        return "router"

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        return DayActivity.empty()

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        _, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        return _silent_days(
            len(day_of_weeks), {day: self._offsets.copy() for day in wanted}
        )


class UnusedPolicy(AddressPolicy):
    """Routed but idle space: no clients, no probe responses."""

    kind = PolicyKind.UNUSED

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)

    def assigned_offsets(self) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        return DayActivity.empty()

    def days_activity(
        self,
        day_of_weeks: Sequence[int],
        traffic_scales: Sequence[float],
        snapshot_days: Iterable[int] = (),
    ) -> DaysActivity:
        _, wanted = self._prepare_days(day_of_weeks, traffic_scales, snapshot_days)
        return _silent_days(
            len(day_of_weeks),
            {day: np.empty(0, dtype=np.int64) for day in wanted},
        )


_POLICY_CLASSES: dict[PolicyKind, type[AddressPolicy]] = {
    PolicyKind.STATIC: StaticPolicy,
    PolicyKind.DYNAMIC_SHORT: DynamicShortLeasePolicy,
    PolicyKind.DYNAMIC_LONG: DynamicLongLeasePolicy,
    PolicyKind.ROUND_ROBIN: RoundRobinPolicy,
    PolicyKind.GATEWAY: GatewayPolicy,
    PolicyKind.CRAWLER: CrawlerPolicy,
    PolicyKind.SERVER: ServerPolicy,
    PolicyKind.ROUTER: RouterPolicy,
    PolicyKind.UNUSED: UnusedPolicy,
}


def make_policy(
    kind: PolicyKind,
    seed: np.random.SeedSequence | int,
    network_type: str,
    config: SimulationConfig,
    sub_base: int,
) -> AddressPolicy:
    """Instantiate a fresh policy of the given kind.

    The same ``(kind, seed)`` pair always yields the same day-by-day
    behaviour, which is how whole simulation runs stay reproducible.
    """
    rng = np.random.default_rng(seed)
    cls = _POLICY_CLASSES[kind]
    return cls(rng, network_type, config, sub_base=sub_base)
