"""Address-assignment policies: how one /24 block behaves day by day.

Section 5 of the paper attributes the striking variety of /24 activity
patterns (Fig. 6) to the interplay of *address assignment practice* and
*user behaviour*.  Each policy class here is the generative counterpart
of one observed pattern:

- :class:`StaticPolicy` — fixed subscriber→address mapping, sparse
  filling degree (Fig. 6a).
- :class:`RoundRobinPolicy` — a cycling pool assigning consecutive
  addresses, high filling degree but low utilization (Fig. 6b).
- :class:`DynamicLongLeasePolicy` — DHCP with long leases: subscribers
  hold addresses for weeks (Fig. 6c).
- :class:`DynamicShortLeasePolicy` — ≤24h leases: subscribers land on
  a fresh address almost daily, near-complete filling (Fig. 6d).
- :class:`GatewayPolicy` — a handful of CGN/proxy addresses
  aggregating thousands of subscribers: maximal utilization, huge
  traffic, huge User-Agent diversity (Sec. 6).
- :class:`CrawlerPolicy` — bots: huge traffic, one User-Agent.
- :class:`ServerPolicy` / :class:`RouterPolicy` — infrastructure that
  rarely or never contacts the CDN but answers probes (Sec. 3.3).
- :class:`UnusedPolicy` — routed but idle space.

A policy is a stateful day-by-day generator: calling
:meth:`AddressPolicy.day_activity` for consecutive days yields the
block's active offsets, per-address hit counts, and the subscriber
attribution needed for User-Agent sampling.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.errors import ConfigError
from repro.sim.behavior import activity_probability, daily_hits, draw_engagement
from repro.sim.config import SimulationConfig
from repro.sim.util import hash_int

BLOCK_SIZE = 256


class PolicyKind(enum.Enum):
    """The assignment-practice taxonomy used throughout the library."""

    STATIC = "static"
    DYNAMIC_SHORT = "dynamic_short"
    DYNAMIC_LONG = "dynamic_long"
    ROUND_ROBIN = "round_robin"
    GATEWAY = "gateway"
    CRAWLER = "crawler"
    SERVER = "server"
    ROUTER = "router"
    UNUSED = "unused"


#: Kinds whose addresses act as WWW clients (appear in CDN logs).
CLIENT_KINDS = frozenset(
    {
        PolicyKind.STATIC,
        PolicyKind.DYNAMIC_SHORT,
        PolicyKind.DYNAMIC_LONG,
        PolicyKind.ROUND_ROBIN,
        PolicyKind.GATEWAY,
        PolicyKind.CRAWLER,
    }
)

#: Kinds counted as dynamic assignment (for ground-truth comparisons).
DYNAMIC_KINDS = frozenset(
    {PolicyKind.DYNAMIC_SHORT, PolicyKind.DYNAMIC_LONG, PolicyKind.ROUND_ROBIN}
)


@dataclass
class DayActivity:
    """One block-day of CDN-visible activity.

    ``offsets``/``hits`` are per *address* (offset within the /24);
    the ``sub_*`` arrays are per active *subscriber* and carry the
    attribution needed to sample User-Agents (a gateway address
    aggregates many subscribers).
    """

    offsets: np.ndarray
    hits: np.ndarray
    sub_ids: np.ndarray
    sub_hits: np.ndarray
    sub_offsets: np.ndarray

    @classmethod
    def empty(cls) -> "DayActivity":
        return cls(
            offsets=np.empty(0, dtype=np.int64),
            hits=np.empty(0, dtype=np.int64),
            sub_ids=np.empty(0, dtype=np.int64),
            sub_hits=np.empty(0, dtype=np.int64),
            sub_offsets=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_subscribers(
        cls, sub_ids: np.ndarray, sub_hits: np.ndarray, sub_offsets: np.ndarray
    ) -> "DayActivity":
        """Aggregate per-subscriber rows into per-address rows."""
        if sub_ids.size == 0:
            return cls.empty()
        per_offset = np.bincount(sub_offsets, weights=sub_hits, minlength=BLOCK_SIZE)
        offsets = np.flatnonzero(per_offset)
        return cls(
            offsets=offsets.astype(np.int64),
            hits=per_offset[offsets].astype(np.int64),
            sub_ids=sub_ids.astype(np.int64),
            sub_hits=sub_hits.astype(np.int64),
            sub_offsets=sub_offsets.astype(np.int64),
        )


class AddressPolicy(abc.ABC):
    """Base class: a stateful per-/24 activity generator."""

    kind: ClassVar[PolicyKind]

    def __init__(self, rng: np.random.Generator, network_type: str, config: SimulationConfig) -> None:
        self._rng = rng
        self.network_type = network_type
        self._config = config

    @abc.abstractmethod
    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        """Advance one day and return the block's CDN activity."""

    @abc.abstractmethod
    def assigned_offsets(self) -> np.ndarray:
        """Offsets currently holding an assignment (probe-relevant)."""

    @property
    def subscriber_count(self) -> int:
        """Subscribers currently served by this block (0 for infra)."""
        return 0

    @property
    def scan_category(self) -> str:
        """How the scanner models this block: client/server/router/none."""
        if self.kind in CLIENT_KINDS:
            return "client"
        return "none"


class _SubscriberPool:
    """Shared subscriber bookkeeping: engagement, identity, turnover."""

    def __init__(
        self,
        rng: np.random.Generator,
        count: int,
        sub_base: int,
        turnover_daily: float,
    ) -> None:
        if count <= 0:
            raise ConfigError(f"subscriber count must be positive: {count}")
        self._rng = rng
        self.engagement = draw_engagement(rng, count)
        self.sub_ids = sub_base + np.arange(count, dtype=np.int64)
        self._next_id = sub_base + count
        self._turnover_daily = turnover_daily

    def __len__(self) -> int:
        return int(self.sub_ids.size)

    def turn_over(self) -> np.ndarray:
        """Replace a random sliver of subscribers (new tenants).

        Returns the indexes that turned over, so policies can decide
        whether the address mapping follows the line (static) or the
        pool (dynamic).
        """
        churned = np.flatnonzero(self._rng.random(len(self)) < self._turnover_daily)
        if churned.size:
            self.engagement[churned] = draw_engagement(self._rng, churned.size)
            self.sub_ids[churned] = self._next_id + np.arange(churned.size)
            self._next_id += churned.size
        return churned

    def active_today(self, day_of_week: int, network_type: str, config: SimulationConfig) -> np.ndarray:
        """Indexes of subscribers active today."""
        probabilities = activity_probability(
            self.engagement,
            day_of_week,
            network_type,
            config.weekend_residential_factor,
            config.weekend_work_factor,
        )
        return np.flatnonzero(self._rng.random(len(self)) < probabilities)

    def hits_for(self, indexes: np.ndarray) -> np.ndarray:
        return daily_hits(self.engagement[indexes], self._rng)


class StaticPolicy(AddressPolicy):
    """Fixed one-to-one subscriber→address assignment (Fig. 6a).

    Filling degree equals the subscriber count — typically well under
    64 addresses, the paper's signature of static assignment (Fig. 8b).
    """

    kind = PolicyKind.STATIC

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(8, 80))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, size=count, replace=False))

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()  # line keeps its address; tenant changes
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active],
            self._pool.hits_for(active),
            self._offsets[active],
        )


class DynamicShortLeasePolicy(AddressPolicy):
    """DHCP with a ≤24h maximum lease (Fig. 6d).

    Every day, active subscribers draw fresh addresses from the pool,
    so over weeks nearly every address in the block is used at least
    once: filling degree ≈ 256 regardless of concurrency.
    """

    kind = PolicyKind.DYNAMIC_SHORT

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(230, 380))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._last_offsets = np.empty(0, dtype=np.int64)

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._last_offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        if active.size > BLOCK_SIZE:
            active = self._rng.choice(active, size=BLOCK_SIZE, replace=False)
        offsets = self._rng.permutation(BLOCK_SIZE)[: active.size]
        self._last_offsets = np.sort(offsets)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active], self._pool.hits_for(active), offsets
        )


class DynamicLongLeasePolicy(AddressPolicy):
    """DHCP with a long lease (Fig. 6c).

    Subscribers hold their address for weeks; a small daily probability
    moves a subscriber to a new free address.  Heavily engaged
    subscribers produce near-continuous rows in the activity matrix,
    casual ones sparse rows — the texture of Fig. 6c.
    """

    kind = PolicyKind.DYNAMIC_LONG

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(140, 250))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._sub_offsets = rng.permutation(BLOCK_SIZE)[:count]
        self._lease_churn_daily = float(rng.uniform(1 / 60, 1 / 15))

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return np.sort(self._sub_offsets)

    def _reassign_leases(self) -> None:
        moving = np.flatnonzero(self._rng.random(len(self._pool)) < self._lease_churn_daily)
        if moving.size == 0:
            return
        free = np.setdiff1d(np.arange(BLOCK_SIZE), self._sub_offsets, assume_unique=False)
        if free.size == 0:
            return
        self._rng.shuffle(free)
        takeable = min(moving.size, free.size)
        self._sub_offsets[moving[:takeable]] = free[:takeable]

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        churned = self._pool.turn_over()
        if churned.size:
            # A new tenant gets a fresh lease, i.e. a new address.
            free = np.setdiff1d(np.arange(BLOCK_SIZE), self._sub_offsets)
            self._rng.shuffle(free)
            takeable = min(churned.size, free.size)
            self._sub_offsets[churned[:takeable]] = free[:takeable]
        self._reassign_leases()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active],
            self._pool.hits_for(active),
            self._sub_offsets[active],
        )


class RoundRobinPolicy(AddressPolicy):
    """A cycling assignment pool (Fig. 6b).

    Few concurrent subscribers, but the pool pointer advances daily, so
    consecutive addresses light up in a marching diagonal band: filling
    degree reaches 256 while spatio-temporal utilization stays low —
    the paper's canonical under-utilized dynamic pool.
    """

    kind = PolicyKind.ROUND_ROBIN

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(40, 95))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._pointer = int(rng.integers(0, BLOCK_SIZE))
        self._advance = int(rng.integers(2, 9))
        self._last_offsets = np.empty(0, dtype=np.int64)

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._last_offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        offsets = (self._pointer + np.arange(active.size)) % BLOCK_SIZE
        self._pointer = (self._pointer + self._advance) % BLOCK_SIZE
        self._last_offsets = np.sort(np.unique(offsets))
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active], self._pool.hits_for(active), offsets
        )


class GatewayPolicy(AddressPolicy):
    """CGN / proxy gateways: few addresses, thousands of users (Sec. 6).

    The gateway addresses are active every day, carry aggregate traffic
    orders of magnitude above a residential line, and exhibit huge
    User-Agent diversity — the top-right region of Fig. 10.
    """

    kind = PolicyKind.GATEWAY

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        # CGN egress ranges fill most of a /24 with translator
        # addresses, each aggregating many users — the paper's fully
        # utilized, traffic-heavy gateway blocks (Secs. 5.3 and 6).
        self._num_gateways = int(rng.integers(128, 257))
        self._gw_offsets = np.sort(rng.choice(BLOCK_SIZE, self._num_gateways, replace=False))
        count = int(rng.integers(2000, 12000))
        self._pool = _SubscriberPool(rng, count, sub_base, config.subscriber_turnover_daily)
        self._salt = int(rng.integers(0, 2**31))

    @property
    def subscriber_count(self) -> int:
        return len(self._pool)

    def assigned_offsets(self) -> np.ndarray:
        return self._gw_offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        self._pool.turn_over()
        active = self._pool.active_today(day_of_week, self.network_type, self._config)
        hits = self._pool.hits_for(active)
        hits = np.maximum(1, (hits * traffic_scale).astype(np.int64))
        gateway_index = hash_int(self._pool.sub_ids[active], self._salt, self._num_gateways)
        return DayActivity.from_subscribers(
            self._pool.sub_ids[active], hits, self._gw_offsets[gateway_index]
        )


class CrawlerPolicy(AddressPolicy):
    """WWW client bots: massive request volume, one User-Agent each.

    The bottom-right region of Fig. 10: very many samples, very few
    unique User-Agent strings.
    """

    kind = PolicyKind.CRAWLER

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(2, 8))
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, count, replace=False))
        self._bot_ids = sub_base + np.arange(count, dtype=np.int64)
        self._median_hits = rng.uniform(5e4, 2e5, size=count)

    @property
    def subscriber_count(self) -> int:
        return int(self._bot_ids.size)

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        active = np.flatnonzero(self._rng.random(self._bot_ids.size) < 0.985)
        hits = self._median_hits[active] * self._rng.lognormal(0.0, 0.4, size=active.size)
        hits = np.maximum(1, (hits * traffic_scale).astype(np.int64))
        return DayActivity.from_subscribers(
            self._bot_ids[active], hits, self._offsets[active]
        )


class ServerPolicy(AddressPolicy):
    """Servers: answer probes, almost never appear as WWW clients.

    A minority of server blocks fetch software updates via the WWW
    (paper Sec. 3.3), producing faint, sporadic CDN activity.
    """

    kind = PolicyKind.SERVER

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(4, 64))
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, count, replace=False))
        self._ids = sub_base + np.arange(count, dtype=np.int64)
        self._fetches_updates = bool(rng.random() < 0.15)

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    @property
    def scan_category(self) -> str:
        return "server"

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        if not self._fetches_updates:
            return DayActivity.empty()
        active = np.flatnonzero(self._rng.random(self._offsets.size) < 0.03)
        if active.size == 0:
            return DayActivity.empty()
        hits = self._rng.integers(1, 20, size=active.size).astype(np.int64)
        return DayActivity.from_subscribers(
            self._ids[active], hits, self._offsets[active]
        )


class RouterPolicy(AddressPolicy):
    """Router interface addresses: visible to traceroute/ICMP only."""

    kind = PolicyKind.ROUTER

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)
        count = int(rng.integers(2, 33))
        self._offsets = np.sort(rng.choice(BLOCK_SIZE, count, replace=False))

    def assigned_offsets(self) -> np.ndarray:
        return self._offsets.copy()

    @property
    def scan_category(self) -> str:
        return "router"

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        return DayActivity.empty()


class UnusedPolicy(AddressPolicy):
    """Routed but idle space: no clients, no probe responses."""

    kind = PolicyKind.UNUSED

    def __init__(self, rng, network_type, config, sub_base: int) -> None:
        super().__init__(rng, network_type, config)

    def assigned_offsets(self) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def day_activity(self, day_of_week: int, traffic_scale: float = 1.0) -> DayActivity:
        return DayActivity.empty()


_POLICY_CLASSES: dict[PolicyKind, type[AddressPolicy]] = {
    PolicyKind.STATIC: StaticPolicy,
    PolicyKind.DYNAMIC_SHORT: DynamicShortLeasePolicy,
    PolicyKind.DYNAMIC_LONG: DynamicLongLeasePolicy,
    PolicyKind.ROUND_ROBIN: RoundRobinPolicy,
    PolicyKind.GATEWAY: GatewayPolicy,
    PolicyKind.CRAWLER: CrawlerPolicy,
    PolicyKind.SERVER: ServerPolicy,
    PolicyKind.ROUTER: RouterPolicy,
    PolicyKind.UNUSED: UnusedPolicy,
}


def make_policy(
    kind: PolicyKind,
    seed: np.random.SeedSequence | int,
    network_type: str,
    config: SimulationConfig,
    sub_base: int,
) -> AddressPolicy:
    """Instantiate a fresh policy of the given kind.

    The same ``(kind, seed)`` pair always yields the same day-by-day
    behaviour, which is how whole simulation runs stay reproducible.
    """
    rng = np.random.default_rng(seed)
    cls = _POLICY_CLASSES[kind]
    return cls(rng, network_type, config, sub_base=sub_base)
