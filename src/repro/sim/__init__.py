"""Simulation substrate: the synthetic Internet and its observatories.

The paper's data sources are proprietary (CDN server logs) or external
(ZMap scans, Ark traceroutes, RouteViews RIBs).  This subpackage builds
a closed synthetic world that exposes the *same interfaces*: per-IP
daily/weekly request aggregates, ICMP/port-scan snapshots, traceroute
router sets, daily routing tables, PTR zones, and sampled User-Agent
strings.  Every analysis in :mod:`repro.core` runs unmodified against
either the real data (had one access to it) or this world.
"""

from repro.sim.behavior import activity_probability, daily_hits, draw_engagement
from repro.sim.cdn import CDNObservatory, CollectionResult
from repro.sim.diurnal import (
    UTC_OFFSETS,
    DiurnalProfile,
    awake_probability,
    best_scan_hour,
    diurnal_factor,
    local_hour,
)
from repro.sim.config import (
    BLOCK_POLICY_MIX,
    ASTypeMix,
    SimulationConfig,
    bench_config,
    small_config,
)
from repro.sim.engine import (
    FaultInjection,
    PerfCounters,
    ShardProgress,
    ShardTask,
    block_ua_rng,
    plan_shards,
    run_sharded_collection,
    simulate_shard,
)
from repro.sim.growth import GrowthModel, MonthlySeries, synthesize_monthly_counts
from repro.sim.policies import (
    CLIENT_KINDS,
    DYNAMIC_KINDS,
    AddressPolicy,
    DayActivity,
    PolicyKind,
    make_policy,
)
from repro.sim.population import ASNode, Block, InternetPopulation
from repro.sim.restructure import (
    EventKind,
    RestructureEvent,
    RestructureSchedule,
    build_schedule,
)
from repro.sim.scanner import ProbeObservatory
from repro.sim.scenario import (
    EVENT_KINDS,
    BlockSelector,
    CatalogEntry,
    Scenario,
    ScenarioEvent,
    ScenarioPlan,
    compile_scenario,
    load_catalog_entry,
    load_scenario,
    parse_scenario,
)
from repro.sim.useragents import (
    NUM_APP_UAS,
    NUM_BROWSER_UAS,
    UASampleStore,
    sample_uas,
    subscriber_ua_ids,
    ua_string,
)

__all__ = [
    "BLOCK_POLICY_MIX",
    "CLIENT_KINDS",
    "UTC_OFFSETS",
    "DiurnalProfile",
    "DYNAMIC_KINDS",
    "NUM_APP_UAS",
    "NUM_BROWSER_UAS",
    "EVENT_KINDS",
    "ASNode",
    "ASTypeMix",
    "AddressPolicy",
    "Block",
    "BlockSelector",
    "CDNObservatory",
    "CatalogEntry",
    "CollectionResult",
    "DayActivity",
    "EventKind",
    "FaultInjection",
    "GrowthModel",
    "InternetPopulation",
    "MonthlySeries",
    "PerfCounters",
    "ShardProgress",
    "PolicyKind",
    "ProbeObservatory",
    "RestructureEvent",
    "RestructureSchedule",
    "Scenario",
    "ScenarioEvent",
    "ScenarioPlan",
    "ShardTask",
    "SimulationConfig",
    "UASampleStore",
    "activity_probability",
    "awake_probability",
    "bench_config",
    "best_scan_hour",
    "block_ua_rng",
    "build_schedule",
    "compile_scenario",
    "daily_hits",
    "diurnal_factor",
    "draw_engagement",
    "load_catalog_entry",
    "load_scenario",
    "local_hour",
    "make_policy",
    "parse_scenario",
    "plan_shards",
    "run_sharded_collection",
    "sample_uas",
    "simulate_shard",
    "small_config",
    "subscriber_ua_ids",
    "synthesize_monthly_counts",
    "ua_string",
]
