"""User behaviour models.

Address activity, as the CDN sees it, is the interplay between the
operator's assignment policy and what users do (paper Sec. 5): people
go online on some days and not others, office networks sleep on
weekends, engaged users are online nearly every day and also pull much
more traffic.

The model here is deliberately simple and explicit:

- Every *subscriber* (a household line, an office machine, a handset)
  has a scalar **engagement** in (0, 1), drawn from a right-skewed
  distribution.  Engagement drives both the probability of being
  active on a given day and the subscriber's traffic volume — that
  positive coupling is what produces the paper's Fig. 9a correlation
  between days-active and daily hits.
- A **weekday factor** per network type modulates activity: work
  networks drop sharply on weekends, residential networks barely move.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Network types whose users follow office schedules.
WORK_TYPES = frozenset({"university", "enterprise"})


#: Fraction of subscribers that are casual (sporadically online).
CASUAL_FRACTION = 0.10

#: Daily-hits model parameters (see :func:`daily_hits`).
BASE_HITS = 18.0
ENGAGEMENT_BOOST = 3.2
HITS_SIGMA = 0.9


def draw_engagement(rng: np.random.Generator, size: int) -> np.ndarray:
    """Per-subscriber engagement scores in (0, 1).

    A two-population mixture: most lines belong to always-on
    households (CPE online nearly every day, Beta(14, 1.15), mean
    ≈0.92) with a casual minority (Beta(1.6, 3.2), mean ≈0.33).  The
    mixture puts the day-over-day churn of the active address set near
    the paper's ~8% (Fig. 4b at x=1): churn ≈ E[p(1-p)]/E[p] ≈ 0.10
    for these parameters.  Values are clipped away from 0 and 1 — the
    0.97 ceiling means even an always-on household misses a day or two
    a month, so the strictly-every-day population (Fig. 9) is made of
    gateways and bots, not lucky households.
    """
    scores = rng.beta(14.0, 1.15, size=size)
    casual = rng.random(size) < CASUAL_FRACTION
    num_casual = int(np.count_nonzero(casual))
    if num_casual:
        scores[casual] = rng.beta(1.6, 3.2, size=num_casual)
    # minimum(maximum(...)) is np.clip's element-wise operation without
    # its dispatch overhead — bit-identical values.
    return np.minimum(np.maximum(scores, 0.02), 0.97)


def weekday_factor(
    day_of_week: int,
    network_type: str,
    weekend_residential_factor: float,
    weekend_work_factor: float,
) -> float:
    """Activity multiplier for a day of week (0 = Monday ... 6 = Sunday)."""
    if not 0 <= day_of_week <= 6:
        raise ConfigError(f"day_of_week out of range: {day_of_week}")
    if day_of_week < 5:
        return 1.0
    if network_type in WORK_TYPES:
        return weekend_work_factor
    return weekend_residential_factor


def scaled_activity_probability(
    engagement: np.ndarray, factor: float
) -> np.ndarray:
    """Per-subscriber activity probability for a known weekday factor.

    Split out of :func:`activity_probability` so callers that resolve
    the factor once per day (the batched policy kernels) share the
    exact clip/multiply with the scalar path.  ``minimum(maximum(x))``
    is the element-wise operation ``np.clip`` performs, without the
    dispatch overhead — bit-identical values.
    """
    return np.minimum(np.maximum(np.asarray(engagement) * factor, 0.0), 0.99)


def activity_probability(
    engagement: np.ndarray,
    day_of_week: int,
    network_type: str,
    weekend_residential_factor: float = 0.97,
    weekend_work_factor: float = 0.35,
) -> np.ndarray:
    """Per-subscriber probability of being active on the given day."""
    factor = weekday_factor(
        day_of_week, network_type, weekend_residential_factor, weekend_work_factor
    )
    return scaled_activity_probability(engagement, factor)


def hit_medians(
    engagement: np.ndarray,
    base_hits: float = BASE_HITS,
    engagement_boost: float = ENGAGEMENT_BOOST,
) -> np.ndarray:
    """Per-subscriber median daily hits: ``base * exp(boost * eng)``.

    Element-wise, so a pool may maintain the medians incrementally
    (recomputing only churned subscribers) and still match a full
    recompute bit for bit.
    """
    return base_hits * np.exp(engagement_boost * np.asarray(engagement))


def hits_from_medians(
    medians: np.ndarray,
    normals: np.ndarray,
    sigma: float = HITS_SIGMA,
) -> np.ndarray:
    """Turn standard-normal draws into daily hit counts (element-wise).

    The deterministic half of :func:`daily_hits`, split out so the
    batched ``days_activity`` path can draw the normals day by day (the
    RNG-consumption-order contract) yet evaluate the log-normal math
    once over a whole horizon's concatenated rows.  Element-wise, so
    any grouping of rows yields bit-identical values.

    ``normals`` is consumed as scratch space (overwritten in place) —
    every caller passes a freshly drawn or freshly concatenated array.
    """
    normals = np.asarray(normals, dtype=np.float64)
    np.multiply(normals, sigma, out=normals)
    np.exp(normals, out=normals)
    np.multiply(normals, medians, out=normals)
    draws = normals.astype(np.int64)
    np.maximum(draws, 1, out=draws)
    return draws


def hits_from_normals(
    engagement: np.ndarray,
    normals: np.ndarray,
    base_hits: float = BASE_HITS,
    engagement_boost: float = ENGAGEMENT_BOOST,
    sigma: float = HITS_SIGMA,
) -> np.ndarray:
    """Daily hit counts from engagement scores and normal draws."""
    return hits_from_medians(
        hit_medians(engagement, base_hits, engagement_boost), normals, sigma
    )


def daily_hits(
    engagement: np.ndarray,
    rng: np.random.Generator,
    base_hits: float = BASE_HITS,
    engagement_boost: float = ENGAGEMENT_BOOST,
    sigma: float = HITS_SIGMA,
) -> np.ndarray:
    """Requests issued by each active subscriber on one day.

    Log-normal around an engagement-dependent median::

        median = base_hits * exp(engagement_boost * engagement)

    A casual user (engagement 0.1) issues ~25 requests/day; a heavy
    user (engagement 0.9) several hundreds — matching the paper's
    observation that addresses active almost every day also issue far
    more requests (Fig. 9a).  Returns integers >= 1.

    The log-normal is drawn as ``exp(sigma * standard_normal())`` —
    the same bitstream consumption as ``rng.lognormal`` — so the
    scalar and batched kernels share :func:`hits_from_normals` exactly.
    """
    engagement = np.asarray(engagement)
    normals = rng.standard_normal(size=engagement.shape)
    return hits_from_normals(
        engagement, normals, base_hits=base_hits,
        engagement_boost=engagement_boost, sigma=sigma,
    )
