"""The synthetic Internet population.

Builds, from one :class:`~repro.sim.config.SimulationConfig`, the full
static structure the observatories operate on:

- a delegation table (who administers which space),
- autonomous systems with a network type, country, and address
  allocations carved from their country's delegated space,
- /24 blocks, each with an assignment-policy kind, a reverse-DNS naming
  scheme, and a reproducible seed for its day-by-day behaviour,
- the baseline BGP routing table announcing every allocation.

The population is *ground truth*: the analyses never see it.  They see
only what the CDN logs, the scanners, and the routing feed expose —
the same epistemic position the paper is in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.net.prefix import Prefix, coalesce, span_to_prefixes
from repro.rdns.ptr import NamingScheme, draw_scheme
from repro.registry.countries import COUNTRIES, Country
from repro.registry.delegations import DelegationTable, synthesize_delegations
from repro.registry.rir import RIR
from repro.routing.table import RoutingTable
from repro.sim.config import BLOCK_POLICY_MIX, SimulationConfig
from repro.sim.policies import CLIENT_KINDS, AddressPolicy, PolicyKind, make_policy

#: Sub-id address space reserved per block (ample for turnover).
SUBSCRIBER_ID_STRIDE = 1_000_000

#: First AS number handed out to synthetic networks.
FIRST_ASN = 2000


@dataclass
class ASNode:
    """One autonomous system: identity, type, location, allocations."""

    asn: int
    network_type: str
    country: str
    rir: RIR
    prefixes: list[Prefix] = field(default_factory=list)
    block_indexes: list[int] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.block_indexes)


@dataclass
class Block:
    """One /24 block: the unit of assignment-policy simulation."""

    index: int
    base: int
    asn: int
    country: str
    rir: RIR
    network_type: str
    kind: PolicyKind
    seed: int
    naming: NamingScheme

    @property
    def sub_base(self) -> int:
        """Base of this block's subscriber-id space."""
        return (self.index + 1) * SUBSCRIBER_ID_STRIDE

    @property
    def is_client(self) -> bool:
        """Whether addresses in this block act as WWW clients."""
        return self.kind in CLIENT_KINDS

    def make_policy(self, config: SimulationConfig, kind: PolicyKind | None = None, salt: int = 0) -> AddressPolicy:
        """A fresh, reproducible policy instance for this block.

        ``kind``/``salt`` let restructuring events respawn the block
        under a different policy with fresh randomness.
        """
        effective = self.kind if kind is None else kind
        seed = np.random.SeedSequence([self.seed, salt])
        return make_policy(effective, seed, self.network_type, config, self.sub_base)


def _naming_group(kind: PolicyKind) -> str:
    if kind is PolicyKind.STATIC:
        return "static"
    if kind in {PolicyKind.DYNAMIC_SHORT, PolicyKind.DYNAMIC_LONG, PolicyKind.ROUND_ROBIN}:
        return "dynamic"
    return kind.value


#: Multiplier on the unused/static share per registry: early-founded
#: registries handed out space generously (legacy sparseness), the
#: late-founded LACNIC/AFRINIC had conservation policies from the start
#: (paper Sec. 7.2's explanation for Fig. 12's regional contrast).
LEGACY_SPARSENESS: dict[RIR, float] = {
    RIR.ARIN: 1.45,
    RIR.RIPE: 1.10,
    RIR.APNIC: 0.95,
    RIR.LACNIC: 0.55,
    RIR.AFRINIC: 0.50,
}


def _adjusted_policy_mix(network_type: str, country: Country) -> tuple[list[PolicyKind], np.ndarray]:
    """The block-policy mix for one AS, adjusted for region and CGN.

    Countries with high carrier-grade-NAT shares shift weight from
    directly-assigned client blocks toward gateways; early-registry
    regions carry more idle and sparsely-used legacy space.
    """
    mix = dict(BLOCK_POLICY_MIX[network_type])
    if "gateway" in mix:
        boost = 0.5 + country.cgn_share
        mix["gateway"] = mix["gateway"] * boost
    sparseness = LEGACY_SPARSENESS[country.rir]
    for legacy_kind in ("unused", "static"):
        if legacy_kind in mix:
            mix[legacy_kind] = mix[legacy_kind] * sparseness
    kinds = [PolicyKind(name) for name in mix]
    weights = np.array([mix[kind.value] for kind in kinds], dtype=float)
    return kinds, weights / weights.sum()


class InternetPopulation:
    """The full synthetic world, built deterministically from a config."""

    def __init__(
        self,
        config: SimulationConfig,
        delegations: DelegationTable,
        ases: list[ASNode],
        blocks: list[Block],
    ) -> None:
        self.config = config
        self.delegations = delegations
        self.ases = ases
        self.blocks = blocks
        self._as_by_number = {node.asn: node for node in ases}
        self._block_by_base = {block.base: block for block in blocks}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, config: SimulationConfig) -> "InternetPopulation":
        """Construct the world described by *config* (deterministic)."""
        config.validate()
        root = np.random.SeedSequence(config.seed)
        delegation_seed, as_seed, block_seed = root.spawn(3)
        delegations = synthesize_delegations(
            np.random.default_rng(delegation_seed), num_slash8=config.num_slash8
        )
        rng = np.random.default_rng(as_seed)
        block_rng = np.random.default_rng(block_seed)

        # Track a cursor into each country's allocated space.
        country_space: dict[str, list[tuple[int, int]]] = {}
        for record in delegations:
            if record.status != "allocated":
                continue
            country_space.setdefault(record.country, []).append(
                (record.start, record.last)
            )
        cursors = {code: [list(span) for span in spans] for code, spans in country_space.items()}

        assignments = _apportion_ases(config, set(cursors))
        rng.shuffle(assignments)  # type: ignore[arg-type]

        ases: list[ASNode] = []
        blocks: list[Block] = []
        for as_index, (network_type, country) in enumerate(assignments):
            node = ASNode(
                asn=FIRST_ASN + as_index,
                network_type=network_type,
                country=country.code,
                rir=country.rir,
            )
            target_blocks = max(1, int(rng.lognormal(np.log(config.mean_blocks_per_as), 0.9)))
            spans = _claim_blocks(cursors[country.code], target_blocks)
            for first, last in spans:
                node.prefixes.extend(span_to_prefixes(first, last))
                for base in range(first, last + 1, 256):
                    kinds, weights = _adjusted_policy_mix(network_type, country)
                    kind = kinds[int(block_rng.choice(len(kinds), p=weights))]
                    block = Block(
                        index=len(blocks),
                        base=base,
                        asn=node.asn,
                        country=country.code,
                        rir=country.rir,
                        network_type=network_type,
                        kind=kind,
                        seed=int(block_rng.integers(0, 2**62)),
                        naming=draw_scheme(_naming_group(kind), block_rng),
                    )
                    node.block_indexes.append(block.index)
                    blocks.append(block)
            node.prefixes = coalesce(node.prefixes)
            if node.block_indexes:
                ases.append(node)
        if not blocks:
            raise ConfigError("population came out empty; increase space or ASes")
        return cls(config, delegations, ases, blocks)

    # -- views --------------------------------------------------------------

    def as_of(self, asn: int) -> ASNode:
        return self._as_by_number[asn]

    def block_at(self, base: int) -> Block | None:
        """The block whose /24 base is *base*, if any."""
        return self._block_by_base.get(base)

    def client_blocks(self) -> list[Block]:
        """Blocks whose addresses appear in CDN logs."""
        return [block for block in self.blocks if block.is_client]

    def blocks_of_kind(self, kind: PolicyKind) -> list[Block]:
        return [block for block in self.blocks if block.kind == kind]

    def kind_counts(self) -> dict[PolicyKind, int]:
        """Ground-truth census of block policies."""
        counts: dict[PolicyKind, int] = {}
        for block in self.blocks:
            counts[block.kind] = counts.get(block.kind, 0) + 1
        return counts

    def baseline_routing(self) -> RoutingTable:
        """The day-0 routing table: every AS announces its allocations."""
        table = RoutingTable()
        for node in self.ases:
            for prefix in node.prefixes:
                table.announce(prefix, node.asn)
        return table

    def total_subscribers_by_country(self) -> dict[str, int]:
        """Ground-truth subscriber mass per country (build-time census).

        Instantiates each client block's policy once to read its
        subscriber count; used to sanity-check the world against the
        country table, not by any analysis.
        """
        totals: dict[str, int] = {}
        for block in self.client_blocks():
            policy = block.make_policy(self.config)
            totals[block.country] = totals.get(block.country, 0) + policy.subscriber_count
        return totals


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Apportion *total* seats proportionally to *weights* (Hamilton)."""
    if total <= 0:
        return np.zeros(weights.size, dtype=np.int64)
    quotas = weights / weights.sum() * total
    counts = np.floor(quotas).astype(np.int64)
    remainder = total - int(counts.sum())
    if remainder > 0:
        order = np.argsort(quotas - counts)[::-1]
        counts[order[:remainder]] += 1
    return counts


def _apportion_ases(
    config: SimulationConfig, available: set[str]
) -> list[tuple[str, Country]]:
    """Deterministic (type, country) assignment for every AS.

    Network-type counts follow the configured mix; within each type,
    countries receive ASes proportionally to the relevant subscriber
    base — cellular mass for cellular operators, fixed broadband for
    everything else.  Largest-remainder apportionment keeps per-country
    counts tight around their expectation, which is what lets the
    Fig. 3b effect (visible addresses track broadband, not cellular)
    emerge at small world sizes.
    """
    candidates = [country for country in COUNTRIES if country.code in available]
    if not candidates:
        raise ConfigError("no country has allocated space left")
    mix = config.as_type_mix.as_dict()
    type_counts = _largest_remainder(
        np.array(list(mix.values())), config.num_ases
    )
    assignments: list[tuple[str, Country]] = []
    for network_type, count in zip(mix, type_counts):
        if network_type == "cellular":
            mass = np.array([country.cellular_subs for country in candidates])
        else:
            mass = np.array([max(country.broadband_subs, 0.3) for country in candidates])
        per_country = _largest_remainder(mass, int(count))
        for country, country_count in zip(candidates, per_country):
            assignments.extend([(network_type, country)] * int(country_count))
    return assignments


def _claim_blocks(
    spans: list[list[int]], target_blocks: int
) -> list[tuple[int, int]]:
    """Claim up to *target_blocks* /24s from a country's free spans.

    Walks the country's delegated ranges front to back, consuming
    contiguous runs.  Returns inclusive ``(first, last)`` address spans
    aligned to /24 boundaries; may return fewer blocks than requested
    when the country's space runs dry.
    """
    claimed: list[tuple[int, int]] = []
    needed = target_blocks
    for span in spans:
        if needed == 0:
            break
        start, last = span
        available = (last - start + 1) // 256
        if available <= 0:
            continue
        take = min(available, needed)
        claimed.append((start, start + take * 256 - 1))
        span[0] = start + take * 256
        needed -= take
    return claimed
