"""UDmap: dynamic-address inference from user-login traces.

Xie et al. ("How Dynamic are IP Addresses?", SIGCOMM 2007 — reference
[35] of the paper) introduced UDmap: given traces of user logins
annotated with the client address, associate each user identity with
the set of addresses it appears from; addresses visited by many
multi-address users are dynamically assigned, and the inter-switch
times estimate lease durations.

The paper cites UDmap as prior art that "pushes the envelope in
inferring dynamically assigned IP addresses" but "relies on user
identification information" — exactly the dependency this module makes
explicit.  Here it doubles as an *independent check* of the paper's
methodology: on the simulated world, UDmap (using login traces) and
the paper's pipeline (using only anonymous activity + rDNS) should
agree on which blocks are dynamic.

Input shape: a :class:`LoginTrace` — per day, the ``(addresses,
user_ids)`` pairs of observed logins, as produced by
``CDNObservatory.collect_daily(..., login_panel_rate=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

#: Per-day login observations: (addresses uint32, user ids int64).
LoginTrace = list[tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class BlockDynamism:
    """UDmap aggregates for one /24 block.

    ``switch_rate`` is the fraction of observed user-day transitions in
    the block where the user appeared on a different address than the
    previous time it was seen; ``users`` is the number of panel users
    observed, ``user_days`` the number of (user, day) observations.
    """

    base: int
    users: int
    user_days: int
    switch_rate: float
    mean_addresses_per_user: float


def _iter_user_paths(trace: LoginTrace):
    """Yield (user, [(day, ip), ...]) for every user in the trace."""
    per_user: dict[int, list[tuple[int, int]]] = {}
    for day, (ips, users) in enumerate(trace):
        if ips.size != users.size:
            raise DatasetError("login-trace day has misaligned columns")
        for ip, user in zip(ips.tolist(), users.tolist()):
            per_user.setdefault(user, []).append((day, ip))
    return per_user.items()


def udmap_scores(trace: LoginTrace, min_user_days: int = 20) -> dict[int, BlockDynamism]:
    """Per-/24 dynamism aggregates from a login trace.

    A user's consecutive sightings *within the same /24* form its local
    path; each step either keeps the address (static-like) or switches
    it (dynamic-like).  Blocks with fewer than *min_user_days*
    observations are omitted — too little evidence, like UDmap's
    minimum-trace requirements.
    """
    if not trace:
        raise DatasetError("empty login trace")
    switches: dict[int, int] = {}
    steps: dict[int, int] = {}
    users_per_block: dict[int, set[int]] = {}
    user_days: dict[int, int] = {}
    addresses_per_user_block: dict[tuple[int, int], set[int]] = {}

    for user, path in _iter_user_paths(trace):
        by_block: dict[int, list[tuple[int, int]]] = {}
        for day, ip in path:
            base = (ip >> 8) << 8
            by_block.setdefault(base, []).append((day, ip))
        for base, sightings in by_block.items():
            sightings.sort()
            users_per_block.setdefault(base, set()).add(user)
            user_days[base] = user_days.get(base, 0) + len(sightings)
            addresses_per_user_block[(base, user)] = {ip for _, ip in sightings}
            for (_, ip_a), (_, ip_b) in zip(sightings, sightings[1:]):
                steps[base] = steps.get(base, 0) + 1
                if ip_a != ip_b:
                    switches[base] = switches.get(base, 0) + 1

    out: dict[int, BlockDynamism] = {}
    for base, users in users_per_block.items():
        if user_days.get(base, 0) < min_user_days or steps.get(base, 0) == 0:
            continue
        address_counts = [
            len(addresses_per_user_block[(base, user)]) for user in users
        ]
        out[base] = BlockDynamism(
            base=base,
            users=len(users),
            user_days=user_days[base],
            switch_rate=switches.get(base, 0) / steps[base],
            mean_addresses_per_user=float(np.mean(address_counts)),
        )
    return out


def classify_blocks_udmap(
    scores: dict[int, BlockDynamism], dynamic_threshold: float = 0.02
) -> dict[int, bool]:
    """Block base → is-dynamic verdict from UDmap scores.

    A block is dynamic when its users switch addresses in at least
    *dynamic_threshold* of observed consecutive sightings.  The
    discriminating line is low because truly static assignment yields
    a switch rate of exactly zero (a line keeps its address), while
    even multi-week DHCP leases produce a few percent: 24h-lease pools
    sit near 1.0, long-lease pools at 0.02–0.1, static blocks at 0.
    """
    if not 0.0 < dynamic_threshold < 1.0:
        raise DatasetError(f"bad dynamic threshold: {dynamic_threshold}")
    return {
        base: score.switch_rate >= dynamic_threshold
        for base, score in scores.items()
    }


def lease_runs_by_block(trace: LoginTrace) -> dict[int, list[int]]:
    """Per-/24, the day-spans users held one address before switching.

    One pass over the trace: for each user and block, every maximal
    run of consecutive sightings on one address contributes its span.
    Blocks observed but never switched map to an empty list.
    """
    runs: dict[int, list[int]] = {}
    for user, path in _iter_user_paths(trace):
        by_block: dict[int, list[tuple[int, int]]] = {}
        for day, ip in path:
            by_block.setdefault((ip >> 8) << 8, []).append((day, ip))
        for base, sightings in by_block.items():
            sightings.sort()
            block_runs = runs.setdefault(base, [])
            run_start_day, current_ip = sightings[0]
            for day, ip in sightings[1:]:
                if ip != current_ip:
                    block_runs.append(day - run_start_day)
                    run_start_day = day
                    current_ip = ip
    return runs


def estimate_lease_days(trace: LoginTrace, base: int) -> float:
    """Median address-holding time (days) of panel users in one /24.

    The median over the block's lease runs estimates the lease
    duration, the UDmap-style "how long does a user keep an address"
    question (cf. Moura et al.'s DHCP churn estimation).  Returns
    ``inf`` when no user ever switched (static assignment).  For bulk
    use, call :func:`lease_runs_by_block` once instead of this
    per-block convenience.
    """
    runs = lease_runs_by_block(trace)
    if base not in runs:
        raise DatasetError(f"no login observations for block {base:#010x}")
    block_runs = runs[base]
    if not block_runs:
        return float("inf")
    return float(np.median(block_runs))
