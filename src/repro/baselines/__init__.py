"""Baseline methods from the paper's related work.

The paper positions its CDN-log methodology against prior techniques
for inferring address dynamics.  This subpackage implements the
closest reproducible baseline:

- :mod:`repro.baselines.udmap` — UDmap (Xie et al., SIGCOMM 2007):
  dynamic-address inference from user-login traces.  Used to
  cross-validate the paper's rDNS- and filling-degree-based
  classification without access to the simulator's ground truth.
"""

from repro.baselines.udmap import (
    BlockDynamism,
    LoginTrace,
    classify_blocks_udmap,
    estimate_lease_days,
    lease_runs_by_block,
    udmap_scores,
)

__all__ = [
    "BlockDynamism",
    "LoginTrace",
    "classify_blocks_udmap",
    "estimate_lease_days",
    "lease_runs_by_block",
    "udmap_scores",
]
