"""Command-line interface: simulate worlds and analyse activity datasets.

Separates the two halves of the paper's pipeline the way an operator
would run them:

- ``repro simulate`` builds a synthetic Internet, observes it through
  the CDN, and writes the dataset (``.npz``) and daily routing series
  (``.rib.txt``) to disk;
- ``repro analyze`` loads a stored dataset and prints one of the
  paper's analyses (churn, block metrics, change detection, traffic
  concentration) — or ``all`` of them in one pass.  Analyses share the
  dataset's memoized :class:`~repro.core.index.DatasetIndex`, so the
  expensive sorted-union/projection step is computed once per run, not
  once per analysis.
- ``repro serve`` runs the live observatory: one interval collected
  and crash-safely appended to a live store per tick, incremental
  analyses folded in, and a Prometheus scrape endpoint serving the
  run's metrics while collection is in flight.  Kill it at any instant
  and rerun the same command: it catches up by deterministic replay
  and converges on the identical dataset (same SHA-256) an
  uninterrupted run produces.

Long ``simulate`` runs are crash-safe: ``--checkpoint-dir`` persists
every finished shard atomically, and ``--resume`` restarts an
interrupted run from those checkpoints with bit-identical output.

Example::

    python -m repro simulate --seed 7 --days 28 --out world
    python -m repro simulate --seed 7 --days 364 --workers 8 \
        --checkpoint-dir ckpt --out world     # interrupted? add --resume
    python -m repro analyze churn world.npz
    python -m repro analyze change world.npz --month-days 14
    python -m repro analyze all world.npz
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence

import numpy as np

from repro.core import change, churn, detect, metrics, potential, seasonal, traffic
from repro.core.io import (
    load_dataset,
    open_store,
    save_dataset,
    save_routing_series,
)
from repro.core.store import COMMIT_PHASE_FINALIZED, COMMIT_PHASE_FLIPPED
from repro.obs import (
    ObsContext,
    build_manifest,
    manifest_path_for,
    write_manifest,
    write_prometheus,
    write_trace_json,
)
from repro.errors import ConfigError
from repro.net.ipv4 import format_ip
from repro.obs import context as obs_api
from repro.report import format_count, format_percent, render_table
from repro.serve import MetricsEndpoint, ObservatoryService
from repro.sim import (
    CDNObservatory,
    FaultInjection,
    InternetPopulation,
    SimulationConfig,
    load_scenario,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatio-temporal analysis of active IPv4 address space",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="build a world, collect CDN logs, write them to disk"
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--ases", type=int, default=60, help="number of ASes")
    simulate.add_argument(
        "--blocks-per-as", type=float, default=8.0, help="mean /24 blocks per AS"
    )
    simulate.add_argument("--days", type=int, default=28)
    simulate.add_argument(
        "--weekly", action="store_true", help="store weekly aggregates (days must be a multiple of 7)"
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded collection engine "
        "(output is bit-identical for any worker count)",
    )
    simulate.add_argument(
        "--no-compress",
        action="store_true",
        help="store the dataset uncompressed (larger file, much faster loads)",
    )
    simulate.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-shard checkpoints; finished shards are "
        "persisted atomically so an interrupted run can be resumed",
    )
    simulate.add_argument(
        "--resume",
        action="store_true",
        help="load finished shard checkpoints from --checkpoint-dir and "
        "simulate only the remainder (bit-identical to an uninterrupted run)",
    )
    simulate.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="worker retries per shard before degrading to in-process execution",
    )
    simulate.add_argument(
        "--inject-fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="testing/CI hook: probability that a shard's worker fails once "
        "with a deterministic, seed-keyed injected fault (retries recover it; "
        "the output is unchanged)",
    )
    simulate.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="write the dataset as an out-of-core sharded store under DIR "
        "instead of a single .npz — the merge phase streams shards to disk "
        "and never assembles the full dataset in memory",
    )
    simulate.add_argument(
        "--store-shard-blocks",
        type=int,
        default=256,
        metavar="N",
        help="/24 blocks per store shard (with --store-dir)",
    )
    simulate.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="JSON scenario timeline injecting exogenous events (outages, "
        "lockdown shifts, CGNAT consolidation, ...) into the collection; "
        "see examples/scenarios/ — output stays bit-identical for any "
        "--workers and across --resume",
    )
    simulate.add_argument("--out", required=True, help="output path prefix")
    _add_obs_flags(simulate)

    analyze = commands.add_parser("analyze", help="run one analysis on a stored dataset")
    analyze.add_argument(
        "analysis",
        choices=["churn", "metrics", "change", "traffic", "potential", "weekday", "all"],
    )
    analyze.add_argument(
        "dataset",
        help="path to a .npz dataset, or a store directory (churn and "
        "metrics then stream shard-by-shard in constant memory)",
    )
    analyze.add_argument("--month-days", type=int, default=28)
    analyze.add_argument("--top-fraction", type=float, default=0.10)
    analyze.add_argument(
        "--detect-events",
        action="store_true",
        help="additionally localize exogenous change points (outages, "
        "demand shifts, renumbering) in the dataset's per-block "
        "active/hits/churn series",
    )
    _add_obs_flags(analyze)

    serve = commands.add_parser(
        "serve",
        help="run the live observatory: collect one interval per tick, "
        "append it crash-safely to a live store, expose metrics over HTTP",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--ases", type=int, default=60, help="number of ASes")
    serve.add_argument(
        "--blocks-per-as", type=float, default=8.0, help="mean /24 blocks per AS"
    )
    serve.add_argument("--days", type=int, default=28, help="collection horizon")
    serve.add_argument(
        "--window-days",
        type=int,
        default=1,
        help="days per committed interval (must divide --days)",
    )
    serve.add_argument(
        "--store-dir",
        required=True,
        metavar="DIR",
        help="live store root; an existing store resumes (catch-up by "
        "deterministic replay), a fresh directory starts from interval 1",
    )
    serve.add_argument(
        "--store-shard-blocks",
        type=int,
        default=256,
        metavar="N",
        help="/24 blocks per store shard",
    )
    serve.add_argument(
        "--max-intervals",
        type=int,
        default=None,
        metavar="N",
        help="stop after committing N new intervals (default: run to the "
        "--days horizon)",
    )
    serve.add_argument(
        "--interval-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="pace: sleep S seconds between committed intervals",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /status, and /healthz on 127.0.0.1:PORT "
        "while collecting (0 picks an ephemeral port, printed to stderr)",
    )
    serve.add_argument(
        "--no-verify-replay",
        action="store_true",
        help="skip the catch-up check that replayed columns match the "
        "committed store bit for bit",
    )
    serve.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="JSON scenario timeline injecting exogenous events into the "
        "live collection; catch-up replay and the committed dataset "
        "SHA-256 stay bit-identical to a batch run of the same timeline",
    )
    serve.add_argument(
        "--inject-kill-interval",
        type=int,
        default=None,
        metavar="K",
        help="testing/CI hook: hard-kill the process (exit 86) while "
        "committing interval K, at the phase chosen by "
        "--inject-kill-phase — a restart must converge bit-identically",
    )
    serve.add_argument(
        "--inject-kill-phase",
        choices=[COMMIT_PHASE_FINALIZED, COMMIT_PHASE_FLIPPED],
        default=COMMIT_PHASE_FINALIZED,
        help="commit phase at which --inject-kill-interval fires",
    )
    _add_obs_flags(serve)

    lint = commands.add_parser(
        "lint",
        help="check the tree against the static contracts (reprolint)",
        description="Run the repository's AST-based contract checker "
        "(tools/reprolint). Available from a repository checkout; every "
        "argument after 'lint' is passed through to reprolint.",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to reprolint (paths, --format, "
        "--list-rules, ...)",
    )
    return parser


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span tree, counters, and events as JSON "
        "(never affects the computed output)",
    )
    subparser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's counters, gauges, and span timings in "
        "Prometheus text exposition format",
    )
    subparser.add_argument(
        "--progress",
        action="store_true",
        help="print a heartbeat line to stderr after every finished shard "
        "(done/total, retries, ETA)",
    )


class _ProgressPrinter:
    """Per-shard heartbeat on stderr with a naive linear ETA."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def __call__(self, update) -> None:
        elapsed = time.perf_counter() - self._start
        if update.done > 0:
            eta = f"{elapsed / update.done * (update.total - update.done):.1f}s"
        else:
            eta = "?"
        extras = [
            f"{count} {label}"
            for count, label in (
                (update.resumed, "resumed"),
                (update.retried, "retried"),
                (update.degraded, "degraded"),
            )
            if count
        ]
        detail = f" ({', '.join(extras)})" if extras else ""
        print(
            f"progress: {update.done}/{update.total} shards{detail} "
            f"elapsed {elapsed:.1f}s eta {eta}",
            file=sys.stderr,
            flush=True,
        )


def _export_obs(ctx: ObsContext, args: argparse.Namespace) -> None:
    """Write --trace-out / --metrics-out artifacts, if requested."""
    if args.trace_out:
        write_trace_json(args.trace_out, ctx)
        print(f"trace: {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        write_prometheus(args.metrics_out, ctx)
        print(f"metrics: {args.metrics_out}", file=sys.stderr)


def _format_perf(perf) -> str:
    """Render the engine's per-phase wall-clock/throughput counters."""
    text = (
        f"collection: {perf.total_seconds:.2f}s total "
        f"(sim {perf.sim_seconds:.2f}s, merge {perf.merge_seconds:.2f}s, "
        f"routing {perf.routing_seconds:.2f}s) "
        f"with {perf.workers} worker{'s' if perf.workers != 1 else ''} "
        f"({perf.shards} shard{'s' if perf.shards != 1 else ''})\n"
        f"throughput: {format_count(round(perf.block_days_per_second))} block-days/s, "
        f"{format_count(round(perf.addr_days_per_second))} addr-days/s"
    )
    if (
        perf.shards_retried
        or perf.shards_degraded
        or perf.shards_resumed
        or perf.shards_checkpointed
    ):
        text += (
            f"\nresilience: {perf.shards_resumed} resumed, "
            f"{perf.shards_checkpointed} checkpointed, "
            f"{perf.shards_retried} retried, {perf.shards_degraded} degraded"
        )
    return text


def _load_scenario_arg(args: argparse.Namespace):
    """The parsed ``--scenario`` timeline, or ``None`` without the flag."""
    if args.scenario is None:
        return None
    return load_scenario(args.scenario)


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if not 0.0 <= args.inject_fault_rate <= 1.0:
        print("--inject-fault-rate must be a probability", file=sys.stderr)
        return 2
    if args.store_shard_blocks < 1:
        print("--store-shard-blocks must be >= 1", file=sys.stderr)
        return 2
    fault = (
        FaultInjection(rate=args.inject_fault_rate)
        if args.inject_fault_rate > 0
        else None
    )
    try:
        scenario = _load_scenario_arg(args)
    except ConfigError as error:
        print(str(error), file=sys.stderr)
        return 2
    config = SimulationConfig(
        seed=args.seed, num_ases=args.ases, mean_blocks_per_as=args.blocks_per_as
    )
    world = InternetPopulation.build(config)
    observatory = CDNObservatory(world)
    # Every simulate run carries an observation context: the manifest
    # written next to the dataset is the run's provenance record, and
    # recording it never perturbs collected output (tested).
    ctx = ObsContext()
    if scenario is not None:
        ctx.info.update(
            scenario=scenario.name, scenario_events=len(scenario.events)
        )
    collect_kwargs = dict(
        scenario=scenario,
        workers=args.workers,
        max_retries=args.max_retries,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        fault=fault,
        obs=ctx,
        progress=_ProgressPrinter() if args.progress else None,
        store_dir=args.store_dir,
        store_shard_blocks=args.store_shard_blocks,
    )
    try:
        if args.weekly:
            if args.days % 7:
                print("--weekly requires --days to be a multiple of 7", file=sys.stderr)
                return 2
            result = observatory.collect_weekly(args.days // 7, **collect_kwargs)
        else:
            result = observatory.collect_daily(args.days, **collect_kwargs)
    except ConfigError as error:
        # Scenario compilation happens against the concrete world and
        # horizon, so e.g. an out-of-horizon event only surfaces here.
        print(str(error), file=sys.stderr)
        return 2
    routing_path = f"{args.out}.rib.txt"
    if result.store is not None:
        store = result.store
        dataset_path = store.root
        with obs_api.activate(ctx):
            save_routing_series(routing_path, result.routing)
        manifest = build_manifest(
            ctx, dataset_path=dataset_path, dataset_sha256=store.dataset_sha256
        )
        dataset_line = (
            f"store: {dataset_path} ({len(store)} x {store.window_days}d "
            f"snapshots, {store.num_blocks} /24 blocks in "
            f"{len(store.shards)} shards)"
        )
    else:
        dataset_path = f"{args.out}.npz"
        with obs_api.activate(ctx):
            save_dataset(dataset_path, result.dataset, compress=not args.no_compress)
            save_routing_series(routing_path, result.routing)
        manifest = build_manifest(
            ctx, dataset=result.dataset, dataset_path=dataset_path
        )
        dataset_line = (
            f"dataset: {dataset_path} ({len(result.dataset)} x "
            f"{result.dataset.window_days}d snapshots, "
            f"{format_count(result.dataset.total_unique())} unique addresses)"
        )
    manifest_path = manifest_path_for(dataset_path)
    write_manifest(manifest_path, manifest)
    _export_obs(ctx, args)
    print(
        f"world: {len(world.ases)} ASes, {len(world.blocks)} /24 blocks\n"
        + dataset_line + "\n"
        f"routing: {routing_path} ({len(result.routing)} daily tables)\n"
        f"manifest: {manifest_path}\n"
        + _format_perf(result.perf)
    )
    return 0


def _render_churn(summary) -> None:
    """Print one churn summary — shared by in-memory and streamed paths."""
    rows = [
        ("window", f"{summary.window_days}d"),
        ("up events (min/median/max)",
         f"{format_percent(summary.up_min)} / {format_percent(summary.up_median)} / "
         f"{format_percent(summary.up_max)}"),
        ("down events (min/median/max)",
         f"{format_percent(summary.down_min)} / {format_percent(summary.down_median)} / "
         f"{format_percent(summary.down_max)}"),
    ]
    print(render_table(["quantity", "value"], rows, title="Churn"))


def _analyze_churn(dataset, args: argparse.Namespace) -> None:
    if dataset.window_days != 1:
        summary = churn.ChurnSummary(
            dataset.window_days, tuple(churn.transition_churn(dataset))
        )
    else:
        summary = churn.daily_churn(dataset)
    _render_churn(summary)


def _analyze_churn_store(store, args: argparse.Namespace) -> None:
    if store.window_days != 1:
        summary = churn.ChurnSummary(
            store.window_days, tuple(churn.transition_churn_streamed(store))
        )
    else:
        summary = churn.daily_churn_streamed(store)
    _render_churn(summary)


def _render_block_metrics(block_metrics) -> None:
    """Print block metrics — shared by in-memory and streamed paths."""
    fd = block_metrics.filling_degree
    rows = [
        ("active /24 blocks", str(block_metrics.num_blocks)),
        ("median filling degree", str(int(np.median(fd)))),
        ("blocks with FD > 250", format_percent(float((fd > 250).mean()))),
        ("blocks with FD < 64", format_percent(float((fd < 64).mean()))),
        ("median STU", f"{float(np.median(block_metrics.stu)):.3f}"),
    ]
    print(render_table(["quantity", "value"], rows, title="Block metrics"))


def _analyze_metrics(dataset, args: argparse.Namespace) -> None:
    _render_block_metrics(metrics.compute_block_metrics(dataset))


def _analyze_metrics_store(store, args: argparse.Namespace) -> None:
    _render_block_metrics(metrics.compute_block_metrics_streamed(store))


def _analyze_change(dataset, args: argparse.Namespace) -> None:
    detection = change.detect_change(dataset, month_days=args.month_days)
    rows = [
        ("blocks analysed", str(detection.bases.size)),
        ("major change (|ΔSTU| > 0.25)", format_percent(detection.major_fraction)),
    ]
    print(render_table(["quantity", "value"], rows, title="Change detection"))


def _analyze_potential(dataset, args: argparse.Namespace) -> None:
    block_metrics = metrics.compute_block_metrics(dataset)
    report = potential.potential_utilization(block_metrics)
    rows = [
        ("active /24 blocks", str(report.total_blocks)),
        ("sparse blocks (FD<64)", format_percent(report.low_fd_fraction)),
        ("dynamic pools", str(report.dynamic_pool_blocks)),
        ("under-utilized pools", format_percent(report.underutilized_pool_fraction)),
        ("reclaimable addresses", format_count(report.reclaimable_addresses)),
    ]
    print(render_table(["quantity", "value"], rows, title="Potential utilization"))


def _analyze_weekday(dataset, args: argparse.Namespace) -> None:
    profile = seasonal.weekday_profile(dataset)
    rows = [
        (name, format_count(profile.mean_active[day]))
        for day, name in enumerate(seasonal.WEEKDAY_NAMES)
        if profile.samples[day] > 0
    ]
    rows.append(("weekend dip", f"{profile.weekend_dip:.3f}x"))
    print(render_table(["day", "mean active"], rows, title="Weekday profile"))


def _analyze_traffic(dataset, args: argparse.Namespace) -> None:
    shares = traffic.top_share_series(dataset, args.top_fraction)
    trend = traffic.consolidation_trend(shares) if shares.size > 1 else 0.0
    rows = [
        ("windows", str(shares.size)),
        (f"top-{format_percent(args.top_fraction, 0)} share (first/last)",
         f"{format_percent(shares[0])} / {format_percent(shares[-1])}"),
        ("trend per window", f"{100 * trend:+.3f} points"),
    ]
    print(render_table(["quantity", "value"], rows, title="Traffic concentration"))


def _analyze_events(dataset, args: argparse.Namespace) -> None:
    events = detect.detect_events(dataset)
    if not events:
        print("Detected events: none")
        return
    rows = [
        (
            str(event.window),
            event.kind,
            str(event.num_blocks),
            f"{format_ip(event.first_base)} - {format_ip(event.last_base)}",
            f"{event.magnitude:.2f}",
        )
        for event in events
    ]
    print(
        render_table(
            ["window", "kind", "blocks", "block range", "magnitude"],
            rows,
            title="Detected events",
        )
    )


_ANALYSES = {
    "churn": _analyze_churn,
    "metrics": _analyze_metrics,
    "change": _analyze_change,
    "traffic": _analyze_traffic,
    "potential": _analyze_potential,
    "weekday": _analyze_weekday,
}

#: Analyses with a constant-memory streamed implementation over a store.
_STREAMED_ANALYSES = {
    "churn": _analyze_churn_store,
    "metrics": _analyze_metrics_store,
}


def _analyze_store(store, args: argparse.Namespace) -> None:
    """Dispatch analyses over an out-of-core store.

    Streamed analyses (churn, metrics) never materialize the dataset;
    the rest fall back through ``store.to_dataset()``, built at most
    once even when running "all".
    """
    if args.analysis in _STREAMED_ANALYSES:
        _STREAMED_ANALYSES[args.analysis](store, args)
        return
    names = list(_ANALYSES) if args.analysis == "all" else [args.analysis]
    dataset = None
    for name in names:
        if name in _STREAMED_ANALYSES:
            _STREAMED_ANALYSES[name](store, args)
            continue
        if dataset is None:
            dataset = store.to_dataset()
        _ANALYSES[name](dataset, args)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.days < 1:
        print("--days must be >= 1", file=sys.stderr)
        return 2
    if args.window_days < 1 or args.days % args.window_days:
        print("--window-days must divide --days", file=sys.stderr)
        return 2
    if args.store_shard_blocks < 1:
        print("--store-shard-blocks must be >= 1", file=sys.stderr)
        return 2
    if args.max_intervals is not None and args.max_intervals < 0:
        print("--max-intervals must be >= 0", file=sys.stderr)
        return 2
    if args.interval_seconds < 0:
        print("--interval-seconds must be >= 0", file=sys.stderr)
        return 2
    try:
        scenario = _load_scenario_arg(args)
    except ConfigError as error:
        print(str(error), file=sys.stderr)
        return 2
    config = SimulationConfig(
        seed=args.seed, num_ases=args.ases, mean_blocks_per_as=args.blocks_per_as
    )
    commit_hook = None
    if args.inject_kill_interval is not None:
        kill_interval = args.inject_kill_interval
        kill_phase = args.inject_kill_phase

        def commit_hook(interval: int, phase: str) -> None:
            if interval == kill_interval and phase == kill_phase:
                print(
                    f"injected kill: interval {interval} at {phase}",
                    file=sys.stderr,
                    flush=True,
                )
                # A real hard kill, not an exception: nothing below this
                # line — no finally, no atexit — may run, or the test
                # would not exercise the store's crash protocol.
                os._exit(86)

    ctx = ObsContext()
    endpoint: MetricsEndpoint | None = None
    try:
        publish = None
        if args.metrics_port is not None:
            endpoint = MetricsEndpoint(port=args.metrics_port)
            endpoint.start()
            publish = endpoint.publish
            print(f"metrics: {endpoint.url}/metrics", file=sys.stderr, flush=True)
        try:
            service = ObservatoryService(
                config,
                num_days=args.days,
                window_days=args.window_days,
                store_root=args.store_dir,
                shard_blocks=args.store_shard_blocks,
                ctx=ctx,
                commit_hook=commit_hook,
                publish=publish,
                pace_seconds=args.interval_seconds,
                verify_replay=not args.no_verify_replay,
                scenario=scenario,
            )
        except ConfigError as error:
            print(str(error), file=sys.stderr)
            return 2
        with service:
            report = service.run(max_intervals=args.max_intervals)
    finally:
        if endpoint is not None:
            endpoint.stop()
    _export_obs(ctx, args)
    state = "complete" if report.complete else "paused"
    sha = report.dataset_sha256 or "-"
    print(
        f"serve: {state} at {report.committed}/{report.total} intervals "
        f"({report.replayed} replayed, {report.appended} appended)\n"
        f"store: {args.store_dir}\n"
        f"dataset sha256: {sha}"
    )
    return 0


def _run_lint(lint_args: Sequence[str]) -> int:
    """Run reprolint (``tools/reprolint``) from a repository checkout.

    The linter is repository tooling, not part of the installed
    package: it lives next to the sources it audits so it can run on a
    tree too broken to import.  When ``repro`` is executed from a
    checkout (the development setting where linting matters), the
    repository root is two levels above this file; otherwise fall back
    to the current working directory looking like a checkout.
    """
    import os

    candidates = [
        os.path.normpath(os.path.join(os.path.dirname(__file__), "..", "..")),
        os.getcwd(),
    ]
    for root in candidates:
        if os.path.isdir(os.path.join(root, "tools", "reprolint")):
            if root not in sys.path:
                sys.path.insert(0, root)
            from tools.reprolint.cli import main as lint_main

            return lint_main(list(lint_args))
    print(
        "repro lint: tools/reprolint not found — run from a repository "
        "checkout (the linter is repo tooling, not an installed module)",
        file=sys.stderr,
    )
    return 2


def _cmd_analyze(args: argparse.Namespace) -> int:
    # One dataset object for the whole run: every analysis below reuses
    # its memoized DatasetIndex (union, projections, block scatter).
    ctx = ObsContext()
    with obs_api.activate(ctx):
        if os.path.isdir(args.dataset):
            with open_store(args.dataset) as store:
                _analyze_store(store, args)
                if args.detect_events:
                    _analyze_events(store.to_dataset(), args)
        else:
            dataset = load_dataset(args.dataset)
            if args.analysis == "all":
                for run in _ANALYSES.values():
                    run(dataset, args)
            else:
                _ANALYSES[args.analysis](dataset, args)
            if args.detect_events:
                _analyze_events(dataset, args)
    _export_obs(ctx, args)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw[:1] == ["lint"]:
        # Forward everything after "lint" verbatim: argparse.REMAINDER
        # refuses leading flags (e.g. "repro lint --list-rules"), and
        # reprolint owns its own argument parsing anyway.
        return _run_lint(raw[1:])
    args = _build_parser().parse_args(raw)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_analyze(args)


if __name__ == "__main__":
    raise SystemExit(main())
