"""Reverse-DNS (PTR) record synthesis.

The paper tags /24 blocks as statically or dynamically assigned by
looking for consistent keywords (``static`` vs. ``dynamic``/``pool``)
in PTR names — "a well-known methodology" (Sec. 5.3).  Real ISP naming
is noisy: many networks use generic or encoded names that carry no
assignment hint, and some have no PTR records at all.  The synthesiser
here reproduces that noise so the classifier downstream only ever sees
the partial, keyword-based view the paper's method would see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.net.ipv4 import format_ip, is_valid_ip_int
from repro.errors import AddressError


class NamingScheme(enum.Enum):
    """How an operator names the PTR records of one address block."""

    STATIC_KEYWORD = "static_keyword"    # e.g. static-198-51-100-7.isp.example
    DYNAMIC_KEYWORD = "dynamic_keyword"  # e.g. dynamic-198-51-100-7.isp.example
    POOL_KEYWORD = "pool_keyword"        # e.g. 7.100.pool-51.isp.example
    GENERIC = "generic"                  # e.g. cpe-198-51-100-7.isp.example
    NONE = "none"                        # no PTR records at all


@dataclass(frozen=True)
class PTRRecord:
    """One reverse-DNS record: address and hostname."""

    ip: int
    hostname: str

    def __post_init__(self) -> None:
        if not is_valid_ip_int(self.ip):
            raise AddressError(f"bad address in PTR record: {self.ip!r}")


def hostname_for(ip: int, scheme: NamingScheme, operator: str) -> str | None:
    """Render the PTR hostname of *ip* under a naming scheme.

    Returns ``None`` for :attr:`NamingScheme.NONE`.  The formats are
    modelled on common ISP conventions; what matters downstream is only
    whether the keyword substrings survive into the name.
    """
    if scheme is NamingScheme.NONE:
        return None
    dashed = format_ip(ip).replace(".", "-")
    last_octet = ip & 0xFF
    third_octet = (ip >> 8) & 0xFF
    if scheme is NamingScheme.STATIC_KEYWORD:
        return f"static-{dashed}.{operator}.example.net"
    if scheme is NamingScheme.DYNAMIC_KEYWORD:
        return f"dynamic-{dashed}.{operator}.example.net"
    if scheme is NamingScheme.POOL_KEYWORD:
        return f"{last_octet}.{third_octet}.pool.{operator}.example.net"
    return f"cpe-{dashed}.{operator}.example.net"


def synthesize_block_ptrs(
    block_base: int,
    scheme: NamingScheme,
    operator: str,
    rng: np.random.Generator,
    coverage: float = 0.95,
) -> list[PTRRecord]:
    """PTR records for one /24 block under *scheme*.

    ``coverage`` is the fraction of the 256 addresses that actually
    have a record (real zones are rarely complete).
    """
    if not 0.0 <= coverage <= 1.0:
        raise AddressError(f"coverage must be a fraction: {coverage!r}")
    if block_base & 0xFF:
        raise AddressError(f"not a /24 base: {format_ip(block_base)}")
    records: list[PTRRecord] = []
    if scheme is NamingScheme.NONE:
        return records
    present = rng.random(256) < coverage
    for offset in np.flatnonzero(present):
        ip = block_base + int(offset)
        hostname = hostname_for(ip, scheme, operator)
        assert hostname is not None
        records.append(PTRRecord(ip, hostname))
    return records


#: How likely each true assignment policy is to use each naming scheme.
#: Keys are the policy-kind strings used by :mod:`repro.sim.policies`.
#: The deliberate cross-talk (static blocks named generically, dynamic
#: blocks without keywords, ...) keeps the rDNS view partial and noisy,
#: like the paper's 456K dynamic + 262K static tagged blocks out of
#: millions of active blocks.
SCHEME_MIX: dict[str, list[tuple[NamingScheme, float]]] = {
    "static": [
        (NamingScheme.STATIC_KEYWORD, 0.45),
        (NamingScheme.GENERIC, 0.35),
        (NamingScheme.NONE, 0.20),
    ],
    "dynamic": [
        (NamingScheme.DYNAMIC_KEYWORD, 0.35),
        (NamingScheme.POOL_KEYWORD, 0.25),
        (NamingScheme.GENERIC, 0.25),
        (NamingScheme.NONE, 0.15),
    ],
}


def draw_scheme(policy_kind: str, rng: np.random.Generator) -> NamingScheme:
    """Draw a naming scheme for a block given its true policy kind.

    Policies not listed in :data:`SCHEME_MIX` (gateways, infrastructure,
    unused space) get generic or absent naming.
    """
    mix = SCHEME_MIX.get(
        policy_kind,
        [(NamingScheme.GENERIC, 0.5), (NamingScheme.NONE, 0.5)],
    )
    schemes = [scheme for scheme, _ in mix]
    weights = np.array([weight for _, weight in mix])
    index = int(rng.choice(len(schemes), p=weights / weights.sum()))
    return schemes[index]
