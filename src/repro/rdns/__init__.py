"""Reverse-DNS substrate: PTR synthesis and keyword classification.

Stands in for the PTR datasets the paper uses to tag /24 blocks as
statically or dynamically assigned (Sec. 5.3, Fig. 8b).
"""

from repro.rdns.classify import (
    AssignmentTag,
    classify_block,
    classify_hostname,
    classify_zone,
)
from repro.rdns.ptr import (
    SCHEME_MIX,
    NamingScheme,
    PTRRecord,
    draw_scheme,
    hostname_for,
    synthesize_block_ptrs,
)

__all__ = [
    "SCHEME_MIX",
    "AssignmentTag",
    "NamingScheme",
    "PTRRecord",
    "classify_block",
    "classify_hostname",
    "classify_zone",
    "draw_scheme",
    "hostname_for",
    "synthesize_block_ptrs",
]
