"""Keyword-based static/dynamic tagging of address blocks from PTR names.

Implements the paper's methodology (Sec. 5.3): a /24 block is tagged
*static* or *dynamic* when it contains addresses "with consistent names
that suggest static (keyword ``static``) as well as dynamic (keyword
``dynamic``, ``pool``) assignment".  Blocks with no keyword consensus
stay untagged — only a minority of the address space is classifiable
this way, which is exactly why the paper uses the tagged subsets as
*samples* of the two assignment styles rather than a full partition.
"""

from __future__ import annotations

import enum
import re
from collections import Counter
from collections.abc import Iterable

from repro.net.ipv4 import block_of
from repro.rdns.ptr import PTRRecord


class AssignmentTag(enum.Enum):
    """The rDNS-derived assignment label of a block."""

    STATIC = "static"
    DYNAMIC = "dynamic"


_STATIC_PATTERN = re.compile(r"(?:^|[.\-_])static(?:[.\-_]|$)")
_DYNAMIC_PATTERN = re.compile(r"(?:^|[.\-_])(?:dynamic|pool|dyn|dhcp)(?:[.\-_]|$)")


def classify_hostname(hostname: str) -> AssignmentTag | None:
    """Tag a single PTR hostname by keyword, or ``None`` if no hint.

    A name matching both keyword families (rare, pathological) is
    treated as carrying no signal.
    """
    lowered = hostname.lower()
    is_static = bool(_STATIC_PATTERN.search(lowered))
    is_dynamic = bool(_DYNAMIC_PATTERN.search(lowered))
    if is_static and not is_dynamic:
        return AssignmentTag.STATIC
    if is_dynamic and not is_static:
        return AssignmentTag.DYNAMIC
    return None


def classify_block(
    records: Iterable[PTRRecord],
    min_records: int = 8,
    min_consistency: float = 0.9,
) -> AssignmentTag | None:
    """Tag one block's worth of PTR records, requiring consistency.

    A tag is produced only when at least *min_records* names carry a
    keyword and at least *min_consistency* of those agree.  This is the
    "consistent names" requirement of the paper.
    """
    counts: Counter[AssignmentTag] = Counter()
    for record in records:
        tag = classify_hostname(record.hostname)
        if tag is not None:
            counts[tag] += 1
    total = sum(counts.values())
    if total < min_records:
        return None
    tag, majority = counts.most_common(1)[0]
    if majority / total < min_consistency:
        return None
    return tag


def classify_zone(
    records: Iterable[PTRRecord],
    min_records: int = 8,
    min_consistency: float = 0.9,
) -> dict[int, AssignmentTag]:
    """Group arbitrary PTR records into /24s and tag each block.

    Returns a mapping from /24 base address to tag, with untaggable
    blocks omitted — the shape of the paper's "456K dynamic and 262K
    static /24 address blocks" sample.
    """
    by_block: dict[int, list[PTRRecord]] = {}
    for record in records:
        by_block.setdefault(block_of(record.ip, 24), []).append(record)
    out: dict[int, AssignmentTag] = {}
    for base, block_records in by_block.items():
        tag = classify_block(block_records, min_records, min_consistency)
        if tag is not None:
            out[base] = tag
    return out
