"""Per-AS churn: is volatility concentrated in a few networks? (Fig. 5a).

The paper partitions addresses by origin AS and repeats the churn
calculation per AS, keeping only ASes with at least 1000 active
addresses.  The finding: churn is ubiquitous — roughly half of all
ASes see >5% median up events per window, and 10–20% see >=10%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.errors import DatasetError


@dataclass(frozen=True)
class ASChurn:
    """Per-AS median up/down event fractions for one window size."""

    window_days: int
    asns: np.ndarray
    median_up: np.ndarray
    median_down: np.ndarray
    active_ips: np.ndarray  # distinct active addresses per AS

    def __post_init__(self) -> None:
        sizes = {self.asns.size, self.median_up.size, self.median_down.size, self.active_ips.size}
        if len(sizes) != 1:
            raise DatasetError("misaligned per-AS churn arrays")

    @property
    def num_ases(self) -> int:
        return int(self.asns.size)

    def up_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (x, F(x)) pairs of the Fig. 5a CDF for up events."""
        values = np.sort(self.median_up)
        return values, np.arange(1, values.size + 1) / values.size

    def fraction_above(self, threshold: float) -> float:
        """Fraction of ASes with median up churn above *threshold*."""
        if self.num_ases == 0:
            return 0.0
        return float((self.median_up > threshold).mean())


def per_as_churn(
    dataset: ActivityDataset,
    origins: np.ndarray,
    window_days: int = 1,
    min_active_ips: int = 1000,
) -> ASChurn:
    """Fig. 5a: median up/down event fraction per AS.

    ``origins`` maps each address of ``dataset.all_ips()`` (same order)
    to its origin AS (-1 for unrouted, which is dropped).  The dataset
    must be daily; days are grouped into consecutive *window_days*
    windows (trailing partial windows dropped, as in ``aggregate``),
    but only window *presence* is needed, so the masks come straight
    from the cached per-day index positions — no merged snapshots.
    """
    if dataset.window_days != 1:
        raise DatasetError("per-AS churn expects a daily dataset")
    index = dataset.index
    all_ips = index.all_ips
    origins = np.asarray(origins, dtype=np.int64)
    if origins.size != all_ips.size:
        raise DatasetError(
            f"origins ({origins.size}) must align with all_ips ({all_ips.size})"
        )
    if window_days <= 0:
        raise DatasetError(f"non-positive aggregation factor: {window_days}")
    num_windows = len(dataset) // window_days
    if num_windows < 2:
        raise DatasetError(f"window size {window_days} leaves fewer than two windows")

    routed = origins >= 0
    asns, as_codes = np.unique(origins[routed], return_inverse=True)
    codes = np.full(all_ips.size, -1, dtype=np.int64)
    codes[routed] = as_codes
    num_as = asns.size

    # Per-AS distinct active addresses (for the >=1000-IP filter).
    active_per_as = np.bincount(codes[routed], minlength=num_as)

    def presence_of(window: int) -> np.ndarray:
        # Only presence matters here, never the merged hit counts, so
        # there is no need to aggregate the dataset into windowed
        # snapshots: OR the cached per-day union positions directly.
        mask = np.zeros(all_ips.size, dtype=bool)
        for day in range(window * window_days, (window + 1) * window_days):
            mask[index.snapshot_positions(day)] = True
        return mask

    presence_prev = presence_of(0)
    up_fractions = np.zeros((num_windows - 1, num_as))
    down_fractions = np.zeros((num_windows - 1, num_as))
    for window in range(1, num_windows):
        presence_now = presence_of(window)
        ups = presence_now & ~presence_prev & routed
        downs = presence_prev & ~presence_now & routed
        active_now = presence_now & routed
        active_prev = presence_prev & routed
        up_counts = np.bincount(codes[ups], minlength=num_as)
        down_counts = np.bincount(codes[downs], minlength=num_as)
        now_counts = np.bincount(codes[active_now], minlength=num_as)
        prev_counts = np.bincount(codes[active_prev], minlength=num_as)
        with np.errstate(divide="ignore", invalid="ignore"):
            up_fractions[window - 1] = np.where(
                now_counts > 0, up_counts / np.maximum(now_counts, 1), 0.0
            )
            down_fractions[window - 1] = np.where(
                prev_counts > 0, down_counts / np.maximum(prev_counts, 1), 0.0
            )
        presence_prev = presence_now

    keep = active_per_as >= min_active_ips
    return ASChurn(
        window_days=window_days,
        asns=asns[keep],
        median_up=np.median(up_fractions[:, keep], axis=0),
        median_down=np.median(down_fractions[:, keep], axis=0),
        active_ips=active_per_as[keep],
    )


def top_contributors(
    dataset: ActivityDataset,
    origins: np.ndarray,
    first_range: tuple[int, int],
    second_range: tuple[int, int],
    top_n: int = 10,
) -> tuple[list[int], list[int], int]:
    """The Sec. 4.3 AS concentration check.

    Returns the top-N ASes by appearing addresses, the top-N by
    disappearing addresses, and the overlap size between the two lists.
    The paper finds 7 of the top 10 appear-contributors are also top-10
    disappear-contributors: churn is AS-internal recycling, not
    networks being born or dying.
    """
    all_ips = dataset.all_ips()
    origins = np.asarray(origins, dtype=np.int64)
    if origins.size != all_ips.size:
        raise DatasetError("origins must align with dataset.all_ips()")
    first = dataset.union_snapshot(*first_range)
    second = dataset.union_snapshot(*second_range)
    appeared = second.up_from(first)
    disappeared = first.down_to(second)

    def rank(ips: np.ndarray) -> list[int]:
        pos = np.searchsorted(all_ips, ips)
        asns = origins[pos]
        asns = asns[asns >= 0]
        values, counts = np.unique(asns, return_counts=True)
        order = np.argsort(counts)[::-1]
        return [int(v) for v in values[order][:top_n]]

    top_appear = rank(appeared)
    top_disappear = rank(disappeared)
    overlap = len(set(top_appear) & set(top_disappear))
    return top_appear, top_disappear, overlap
