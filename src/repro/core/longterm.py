"""Long-term volatility: appear/disappear against a baseline (Sec. 4.3).

Two analyses live here:

- :func:`baseline_divergence` — Fig. 4c: per week, how many addresses
  are active now but were not in the first week (*appear*) and vice
  versa (*disappear*).  Over 2015 each side reaches ~25% of the pool.
- :func:`compare_periods` — Table 2: take two two-month unions
  (Jan/Feb vs. Nov/Dec), list appearing/disappearing addresses, and
  measure how often the entire containing /24 flipped with them —
  the signature of operational change rather than user behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset, Snapshot
from repro.errors import DatasetError
from repro.net.ipv4 import blocks_of


@dataclass(frozen=True)
class BaselineDivergence:
    """Fig. 4c series: divergence of each window from the baseline."""

    baseline_index: int
    appear_counts: np.ndarray
    disappear_counts: np.ndarray
    baseline_active: int

    @property
    def appear_fractions(self) -> np.ndarray:
        return self.appear_counts / self.baseline_active

    @property
    def disappear_fractions(self) -> np.ndarray:
        return self.disappear_counts / self.baseline_active

    @property
    def final_appear_fraction(self) -> float:
        return float(self.appear_fractions[-1])

    @property
    def final_disappear_fraction(self) -> float:
        return float(self.disappear_fractions[-1])


def baseline_divergence(
    dataset: ActivityDataset, baseline_index: int = 0
) -> BaselineDivergence:
    """Appear/disappear counts of every window vs. window *baseline_index*."""
    if not 0 <= baseline_index < len(dataset):
        raise DatasetError(f"baseline index {baseline_index} out of range")
    baseline = dataset[baseline_index]
    appear = []
    disappear = []
    for snapshot in dataset:
        appear.append(int(snapshot.up_from(baseline).size))
        disappear.append(int(baseline.down_to(snapshot).size))
    return BaselineDivergence(
        baseline_index=baseline_index,
        appear_counts=np.array(appear, dtype=np.int64),
        disappear_counts=np.array(disappear, dtype=np.int64),
        baseline_active=baseline.num_active,
    )


@dataclass(frozen=True)
class PeriodComparison:
    """Table 2 core: addresses appearing/disappearing between two periods."""

    appeared: np.ndarray
    disappeared: np.ndarray
    appeared_whole_block_fraction: float
    disappeared_whole_block_fraction: float

    @property
    def appear_count(self) -> int:
        return int(self.appeared.size)

    @property
    def disappear_count(self) -> int:
        return int(self.disappeared.size)


def _whole_block_fraction(events: np.ndarray, blockers: np.ndarray) -> float:
    """Fraction of event addresses whose entire /24 flipped with them.

    An appearing address sits in a wholly-appearing /24 iff no address
    of that /24 was active in the earlier period (*blockers* = the
    other period's active set); symmetrically for disappearances.
    """
    if events.size == 0:
        return 0.0
    blocked = np.unique(blocks_of(blockers, 24))
    event_blocks = blocks_of(events, 24)
    pos = np.searchsorted(blocked, event_blocks)
    in_blocked = pos < blocked.size
    in_blocked[in_blocked] &= blocked[pos[in_blocked]] == event_blocks[in_blocked]
    return float((~in_blocked).mean())


def compare_periods(first: Snapshot, second: Snapshot) -> PeriodComparison:
    """The Table 2 comparison between two (typically 2-month) unions."""
    appeared = second.up_from(first)
    disappeared = first.down_to(second)
    return PeriodComparison(
        appeared=appeared,
        disappeared=disappeared,
        appeared_whole_block_fraction=_whole_block_fraction(appeared, first.ips),
        disappeared_whole_block_fraction=_whole_block_fraction(disappeared, second.ips),
    )


def compare_period_ranges(
    dataset: ActivityDataset,
    first_range: tuple[int, int],
    second_range: tuple[int, int],
) -> PeriodComparison:
    """Convenience wrapper taking window index ranges into *dataset*.

    The paper compares the union of the first two months of 2015 with
    the union of the last two months (Sec. 4.3): e.g. weekly windows
    ``(0, 8)`` vs. ``(43, 51)``.
    """
    first = dataset.union_snapshot(*first_range)
    second = dataset.union_snapshot(*second_range)
    if first.start >= second.start:
        raise DatasetError("period ranges must be in chronological order")
    return compare_periods(first, second)
