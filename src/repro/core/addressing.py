"""Addressing-practice dissection: static vs. dynamic (Sec. 5.3, Fig. 8b/8c).

Using rDNS-tagged samples of known-static and known-dynamic /24s, the
paper contrasts their filling degrees: ~75% of static blocks fill fewer
than 64 addresses, while >80% of dynamic blocks fill more than 250 —
dynamic pools cycle through every address within months.  Zooming into
the high-filling-degree pools (FD > 250, hence likely dynamic), their
spatio-temporal utilization splits into a heavily-used majority (>80%)
and a long tail of under-utilized pools — the reclaimable space of
Sec. 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import BlockMetrics
from repro.errors import DatasetError
from repro.rdns.classify import AssignmentTag

#: Filling degree above which a block is treated as a cycling pool.
HIGH_FD_THRESHOLD = 250
#: Filling degree below which a block reads as statically assigned.
LOW_FD_THRESHOLD = 64


@dataclass(frozen=True)
class AddressingDissection:
    """Fig. 8b inputs: FD populations for tagged and all blocks."""

    fd_all: np.ndarray
    fd_static: np.ndarray
    fd_dynamic: np.ndarray

    @property
    def static_low_fd_fraction(self) -> float:
        """Fraction of static-tagged blocks with FD < 64 (paper: ~75%)."""
        if self.fd_static.size == 0:
            return 0.0
        return float((self.fd_static < LOW_FD_THRESHOLD).mean())

    @property
    def dynamic_high_fd_fraction(self) -> float:
        """Fraction of dynamic-tagged blocks with FD > 250 (paper: >80%)."""
        if self.fd_dynamic.size == 0:
            return 0.0
        return float((self.fd_dynamic > HIGH_FD_THRESHOLD).mean())

    @property
    def all_high_fd_fraction(self) -> float:
        """Fraction of all active blocks with FD > 250 (paper: ~50%)."""
        if self.fd_all.size == 0:
            return 0.0
        return float((self.fd_all > HIGH_FD_THRESHOLD).mean())

    @property
    def all_low_fd_fraction(self) -> float:
        """Fraction of all active blocks with FD < 64 (paper: ~30%)."""
        if self.fd_all.size == 0:
            return 0.0
        return float((self.fd_all < LOW_FD_THRESHOLD).mean())


def fd_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted (x, F(x)) pairs for a filling-degree CDF curve."""
    ordered = np.sort(np.asarray(values))
    return ordered, np.arange(1, ordered.size + 1) / max(ordered.size, 1)


def dissect_by_rdns(
    metrics: BlockMetrics, tags: dict[int, AssignmentTag]
) -> AddressingDissection:
    """Fig. 8b: split active blocks by their rDNS assignment tag.

    *tags* maps /24 base addresses to keyword-derived tags (from
    :func:`repro.rdns.classify.classify_zone`); untagged blocks appear
    only in the "all" population, exactly as in the paper.
    """
    static_mask = np.zeros(metrics.num_blocks, dtype=bool)
    dynamic_mask = np.zeros(metrics.num_blocks, dtype=bool)
    for row, base in enumerate(metrics.bases):
        tag = tags.get(int(base))
        if tag is AssignmentTag.STATIC:
            static_mask[row] = True
        elif tag is AssignmentTag.DYNAMIC:
            dynamic_mask[row] = True
    return AddressingDissection(
        fd_all=metrics.filling_degree.copy(),
        fd_static=metrics.filling_degree[static_mask],
        fd_dynamic=metrics.filling_degree[dynamic_mask],
    )


@dataclass(frozen=True)
class PoolUtilization:
    """Fig. 8c: STU distribution of high-filling-degree pools."""

    stu: np.ndarray  # STU of every block with FD > threshold
    fd_threshold: int

    @property
    def num_pools(self) -> int:
        return int(self.stu.size)

    def histogram(self, num_bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Counts per STU percentage bin (the Fig. 8c bars)."""
        counts, edges = np.histogram(self.stu, bins=num_bins, range=(0.0, 1.0))
        return counts, edges

    def fraction_above(self, stu_threshold: float) -> float:
        if self.num_pools == 0:
            return 0.0
        return float((self.stu > stu_threshold).mean())

    def fraction_below(self, stu_threshold: float) -> float:
        if self.num_pools == 0:
            return 0.0
        return float((self.stu < stu_threshold).mean())

    @property
    def fully_utilized_count(self) -> int:
        """Pools at 100% STU — gateway/proxy candidates (Sec. 5.3)."""
        return int((self.stu >= 1.0 - 1e-12).sum())


def pool_utilization(
    metrics: BlockMetrics, fd_threshold: int = HIGH_FD_THRESHOLD
) -> PoolUtilization:
    """Fig. 8c: STU of all blocks with FD above *fd_threshold*."""
    if not 0 < fd_threshold <= 256:
        raise DatasetError(f"bad FD threshold: {fd_threshold}")
    mask = metrics.filling_degree > fd_threshold
    return PoolUtilization(stu=metrics.stu[mask], fd_threshold=fd_threshold)
