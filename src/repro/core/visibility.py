"""Passive vs. active visibility (Sec. 3.2–3.4, Figs. 2 and 3).

The paper compares a month of CDN-observed client addresses with the
union of 8 ICMP scans, at four aggregation granularities (address, /24,
BGP prefix, AS), then classifies the ICMP-only remainder using
port-scan and traceroute data, and finally breaks visibility down by
registry and country.  Headline results these functions reproduce:

- >40% of active client addresses never answer ICMP (NATs, firewalls);
  the gap closes at /24 and nearly vanishes at prefix/AS granularity;
- about half of ICMP-only addresses are attributable to servers or
  router infrastructure, the rest are unknown;
- visibility gains from passive data are largest in regions with low
  probe-response rates (AFRINIC), and countries rank by CDN-visible
  addresses like they rank by broadband (not cellular) subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset, Snapshot
from repro.errors import DatasetError
from repro.net.ipv4 import blocks_of
from repro.net.sets import IPSet
from repro.registry.countries import (
    broadband_ranks,
    cellular_ranks,
    spearman_rank_correlation,
)
from repro.registry.delegations import DelegationTable
from repro.registry.rir import RIR
from repro.routing.table import RoutingTable

GRANULARITIES = ("ip", "slash24", "prefix", "as")


@dataclass(frozen=True)
class VisibilityCounts:
    """Counts of entities seen by the CDN only / both / ICMP only."""

    cdn_only: int
    both: int
    icmp_only: int

    @property
    def total(self) -> int:
        return self.cdn_only + self.both + self.icmp_only

    @property
    def cdn_only_fraction(self) -> float:
        return self.cdn_only / self.total if self.total else 0.0

    @property
    def both_fraction(self) -> float:
        return self.both / self.total if self.total else 0.0

    @property
    def icmp_only_fraction(self) -> float:
        return self.icmp_only / self.total if self.total else 0.0

    @property
    def cdn_gain_over_icmp(self) -> float:
        """How much the CDN adds over active probing alone (Fig. 3a).

        ``cdn_only / (both + icmp_only)`` — the paper reports >150%
        for the AFRINIC region.
        """
        icmp_visible = self.both + self.icmp_only
        return self.cdn_only / icmp_visible if icmp_visible else float("inf")


def _cdn_address_union(cdn_ips) -> np.ndarray:
    """Sorted unique CDN-active addresses from any of the usual shapes.

    Accepts an :class:`ActivityDataset` (uses its memoized index — the
    union is computed once per dataset, not once per visibility call),
    a :class:`Snapshot` (its ips are sorted-unique by construction), or
    a plain array.  Already-sorted-unique arrays are passed through
    without the O(n log n) re-sort the eager ``np.unique`` cost here.
    """
    if isinstance(cdn_ips, ActivityDataset):
        return cdn_ips.index.all_ips
    if isinstance(cdn_ips, Snapshot):
        return cdn_ips.ips
    arr = np.asarray(cdn_ips, dtype=np.uint32)
    if arr.ndim != 1:
        raise DatasetError("cdn_ips must be one-dimensional")
    if arr.size > 1 and not (arr[1:] > arr[:-1]).all():
        return np.unique(arr)
    return arr


def _counts_from_sets(cdn: set, icmp: set) -> VisibilityCounts:
    return VisibilityCounts(
        cdn_only=len(cdn - icmp), both=len(cdn & icmp), icmp_only=len(icmp - cdn)
    )


def visibility_at_granularities(
    cdn_ips: np.ndarray,
    icmp: IPSet,
    routing: RoutingTable,
) -> dict[str, VisibilityCounts]:
    """Fig. 2a: visibility split at IP, /24, BGP-prefix, and AS level.

    A /24, prefix, or AS counts as visible to a method when at least
    one of its addresses is (the paper's footnote 4).
    """
    cdn_ips = _cdn_address_union(cdn_ips)
    icmp_ips = icmp.addresses(limit=None)

    out: dict[str, VisibilityCounts] = {}
    icmp_member = icmp.contains_many(cdn_ips.astype(np.int64))
    both_ip = int(icmp_member.sum())
    out["ip"] = VisibilityCounts(
        cdn_only=int(cdn_ips.size - both_ip),
        both=both_ip,
        icmp_only=int(len(icmp) - both_ip),
    )

    cdn_blocks = set(np.unique(blocks_of(cdn_ips, 24)).tolist())
    icmp_blocks = set(np.unique(blocks_of(icmp_ips, 24)).tolist())
    out["slash24"] = _counts_from_sets(cdn_blocks, icmp_blocks)

    cdn_prefixes = _covering_prefixes(cdn_ips, routing)
    icmp_prefixes = _covering_prefixes(icmp_ips, routing)
    out["prefix"] = _counts_from_sets(cdn_prefixes, icmp_prefixes)

    cdn_as = _origin_ases(cdn_ips, routing)
    icmp_as = _origin_ases(icmp_ips, routing)
    out["as"] = _counts_from_sets(cdn_as, icmp_as)
    return out


def _covering_prefixes(ips: np.ndarray, routing: RoutingTable) -> set:
    prefixes = set()
    for prefix in routing.prefixes():
        lo = int(np.searchsorted(ips, prefix.first))
        hi = int(np.searchsorted(ips, prefix.last, side="right"))
        if hi > lo:
            prefixes.add(prefix)
    return prefixes


def _origin_ases(ips: np.ndarray, routing: RoutingTable) -> set:
    origins = routing.origin_of_many(ips)
    return set(int(asn) for asn in np.unique(origins) if asn >= 0)


@dataclass(frozen=True)
class ICMPOnlyClassification:
    """Fig. 2b: what the ICMP-only population is made of."""

    server: int
    server_and_router: int
    router: int
    unknown: int

    @property
    def total(self) -> int:
        return self.server + self.server_and_router + self.router + self.unknown

    @property
    def infrastructure_fraction(self) -> float:
        """Fraction attributable to server or router infrastructure."""
        if self.total == 0:
            return 0.0
        return (self.server + self.server_and_router + self.router) / self.total


def classify_icmp_only(
    cdn_ips: np.ndarray,
    icmp: IPSet,
    server_set: IPSet,
    router_set: IPSet,
) -> ICMPOnlyClassification:
    """Fig. 2b at address granularity.

    ``server_set`` comes from application-port scans, ``router_set``
    from traceroute-observed interfaces (Sec. 3.3).
    """
    cdn_ips = _cdn_address_union(cdn_ips)
    icmp_only = icmp - IPSet.from_ips(cdn_ips)
    ips = icmp_only.addresses(limit=None).astype(np.int64)
    if ips.size == 0:
        return ICMPOnlyClassification(0, 0, 0, 0)
    is_server = server_set.contains_many(ips)
    is_router = router_set.contains_many(ips)
    server = int((is_server & ~is_router).sum())
    both = int((is_server & is_router).sum())
    router = int((~is_server & is_router).sum())
    unknown = int((~is_server & ~is_router).sum())
    return ICMPOnlyClassification(server, both, router, unknown)


def classify_icmp_only_grouped(
    cdn_ips: np.ndarray,
    icmp: IPSet,
    server_set: IPSet,
    router_set: IPSet,
    routing: RoutingTable,
) -> dict[str, ICMPOnlyClassification]:
    """Fig. 2b at every granularity: IP, /24, BGP prefix, AS.

    An aggregate (block/prefix/AS) composed purely of ICMP-only
    addresses is classified by what its addresses are: *server* if any
    answers application ports, *router* if any appears in traceroutes,
    both categories when both, *unknown* otherwise.  The infrastructure
    share grows with aggregation, as in the paper.
    """
    cdn_ips = _cdn_address_union(cdn_ips)
    icmp_only = icmp - IPSet.from_ips(cdn_ips)
    ips = icmp_only.addresses(limit=None)
    out: dict[str, ICMPOnlyClassification] = {
        "ip": classify_icmp_only(cdn_ips, icmp, server_set, router_set)
    }
    if ips.size == 0:
        empty = ICMPOnlyClassification(0, 0, 0, 0)
        out.update({"slash24": empty, "prefix": empty, "as": empty})
        return out
    is_server = server_set.contains_many(ips.astype(np.int64))
    is_router = router_set.contains_many(ips.astype(np.int64))
    cdn_blocks = set(np.unique(blocks_of(cdn_ips, 24)).tolist())

    def classify_groups(keys: list, exclude: set) -> ICMPOnlyClassification:
        has_server: dict = {}
        has_router: dict = {}
        for key, server_flag, router_flag in zip(keys, is_server, is_router):
            if key is None or key in exclude:
                continue
            has_server[key] = has_server.get(key, False) or bool(server_flag)
            has_router[key] = has_router.get(key, False) or bool(router_flag)
        server = both = router = unknown = 0
        for key in has_server:
            if has_server[key] and has_router[key]:
                both += 1
            elif has_server[key]:
                server += 1
            elif has_router[key]:
                router += 1
            else:
                unknown += 1
        return ICMPOnlyClassification(server, both, router, unknown)

    block_keys = blocks_of(ips, 24).tolist()
    out["slash24"] = classify_groups(block_keys, cdn_blocks)

    cdn_prefixes = _covering_prefixes(cdn_ips, routing)
    prefix_keys = [routing.matching_prefix(int(ip)) for ip in ips]
    out["prefix"] = classify_groups(prefix_keys, cdn_prefixes)

    cdn_as = _origin_ases(cdn_ips, routing)
    origin_array = routing.origin_of_many(ips)
    as_keys = [int(asn) if asn >= 0 else None for asn in origin_array]
    out["as"] = classify_groups(as_keys, cdn_as)
    return out


def visibility_by_rir(
    cdn_ips: np.ndarray,
    icmp: IPSet,
    delegations: DelegationTable,
) -> dict[RIR, VisibilityCounts]:
    """Fig. 3a: the IP-level visibility split per registry."""
    return {
        rir: counts
        for rir, counts in _visibility_by_key(
            cdn_ips, icmp, delegations, lambda record: record.rir
        ).items()
    }


def visibility_by_country(
    cdn_ips: np.ndarray,
    icmp: IPSet,
    delegations: DelegationTable,
) -> dict[str, VisibilityCounts]:
    """Fig. 3b: the IP-level visibility split per country."""
    return _visibility_by_key(cdn_ips, icmp, delegations, lambda record: record.country)


def _visibility_by_key(cdn_ips, icmp, delegations, key):
    cdn_ips = _cdn_address_union(cdn_ips)
    icmp_ips = icmp.addresses(limit=None)
    in_icmp = icmp.contains_many(cdn_ips.astype(np.int64))
    in_cdn = np.zeros(icmp_ips.size, dtype=bool)
    pos = np.searchsorted(cdn_ips, icmp_ips)
    valid = pos < cdn_ips.size
    in_cdn[valid] = cdn_ips[pos[valid]] == icmp_ips[valid]

    def keys_for(ips: np.ndarray) -> list:
        indexes = delegations.lookup_many(ips)
        return [
            key(delegations.records[i]) if i >= 0 else None for i in indexes
        ]

    out: dict = {}

    def bump(record_key, field):
        if record_key is None:
            return
        counts = out.setdefault(record_key, [0, 0, 0])  # cdn_only, both, icmp_only
        counts[field] += 1

    for record_key, is_both in zip(keys_for(cdn_ips), in_icmp):
        bump(record_key, 1 if is_both else 0)
    for record_key, is_both in zip(keys_for(icmp_ips), in_cdn):
        if not is_both:
            bump(record_key, 2)
    return {
        record_key: VisibilityCounts(cdn_only=c[0], both=c[1], icmp_only=c[2])
        for record_key, c in out.items()
    }


def country_rank_agreement(
    per_country: dict[str, VisibilityCounts]
) -> tuple[float, float]:
    """The Fig. 3b rank comparison.

    Ranks countries by CDN-visible addresses (cdn_only + both) and
    correlates against broadband and cellular subscriber ranks.
    Returns ``(broadband_spearman, cellular_spearman)``; the paper's
    observation is that the first is high and the second much lower.
    """
    if len(per_country) < 3:
        raise DatasetError("need several countries to compare ranks")
    visible = {
        code: counts.cdn_only + counts.both for code, counts in per_country.items()
    }
    ordered = sorted(visible, key=lambda code: visible[code], reverse=True)
    cdn_ranks = {code: rank for rank, code in enumerate(ordered, start=1)}
    return (
        spearman_rank_correlation(cdn_ranks, broadband_ranks()),
        spearman_rank_correlation(cdn_ranks, cellular_ranks()),
    )


def icmp_response_rate_by_country(
    cdn_ips: np.ndarray,
    icmp: IPSet,
    delegations: DelegationTable,
) -> dict[str, float]:
    """Per country, the fraction of CDN-active addresses answering ICMP.

    Reproduces the Sec. 3.4 observation (CN ~80% vs. JP ~25%).
    """
    cdn_ips = _cdn_address_union(cdn_ips)
    responding = icmp.contains_many(cdn_ips.astype(np.int64))
    countries = delegations.country_of_many(cdn_ips)
    totals: dict[str, int] = {}
    hits: dict[str, int] = {}
    for code, responds in zip(countries, responding):
        if code is None:
            continue
        totals[code] = totals.get(code, 0) + 1
        if responds:
            hits[code] = hits.get(code, 0) + 1
    return {code: hits.get(code, 0) / total for code, total in totals.items()}
