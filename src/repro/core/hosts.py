"""Relative host counts from User-Agent samples (Sec. 6.3, Fig. 10).

Per /24 block, the number of UA samples estimates traffic volume and
the number of *unique* UA strings is a relative host count.  Plotting
one against the other (both log-scaled) separates three populations:

- the **bulk**: residential/enterprise blocks along the diagonal;
- **bots**: many samples, almost no UA diversity (bottom right);
- **gateways**: many samples *and* huge diversity (top right) — CGN
  and proxy blocks aggregating thousands of devices.

The classifier here reproduces that reading with explicit geometric
rules on the (samples, unique) plane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.sim.useragents import UASampleStore


class HostRegion(enum.Enum):
    """The three Fig. 10 regions."""

    BULK = "bulk"
    BOT = "bot"
    GATEWAY = "gateway"


@dataclass(frozen=True)
class UAScatter:
    """The Fig. 10 scatter: per-/24 sample and unique-UA counts."""

    bases: np.ndarray
    samples: np.ndarray
    uniques: np.ndarray

    def __post_init__(self) -> None:
        if not (self.bases.size == self.samples.size == self.uniques.size):
            raise DatasetError("misaligned UA scatter arrays")
        if self.samples.size and int(self.samples.min()) <= 0:
            raise DatasetError("blocks without samples must be excluded")

    @property
    def num_blocks(self) -> int:
        return int(self.bases.size)

    def correlation(self) -> float:
        """Pearson correlation of log-samples vs. log-uniques.

        The paper notes a strong overall correlation between traffic
        and hosts per block.
        """
        if self.num_blocks < 2:
            raise DatasetError("need at least two blocks to correlate")
        return float(
            np.corrcoef(np.log10(self.samples), np.log10(self.uniques))[0, 1]
        )


def ua_scatter(store: UASampleStore) -> UAScatter:
    """Extract the Fig. 10 scatter from a sample store."""
    bases, samples, uniques = store.as_arrays()
    keep = samples > 0
    return UAScatter(bases=bases[keep], samples=samples[keep], uniques=uniques[keep])


@dataclass(frozen=True)
class RegionThresholds:
    """Geometric rules separating the Fig. 10 regions.

    ``high_sample_quantile`` sets what "a huge number of requests"
    means (relative to the block population).  Bots are high-sample
    blocks whose UA diversity stays below ``bot_max_unique``; gateways
    are high-sample blocks with at least ``gateway_min_unique`` UAs —
    a level no directly-assigned residential /24 reaches, since even a
    fully cycling pool aggregates only a few hundred subscriber
    devices, while CGN blocks aggregate thousands.
    """

    high_sample_quantile: float = 0.80
    bot_max_unique: int = 6
    gateway_min_unique: int = 1000


def classify_regions(
    scatter: UAScatter, thresholds: RegionThresholds | None = None
) -> list[HostRegion]:
    """Assign each block of the scatter to a Fig. 10 region."""
    thresholds = thresholds or RegionThresholds()
    if scatter.num_blocks == 0:
        return []
    high_sample_cut = float(
        np.quantile(scatter.samples, thresholds.high_sample_quantile)
    )
    regions: list[HostRegion] = []
    for samples, uniques in zip(scatter.samples, scatter.uniques):
        if samples >= high_sample_cut and uniques <= thresholds.bot_max_unique:
            regions.append(HostRegion.BOT)
        elif samples >= high_sample_cut and uniques >= thresholds.gateway_min_unique:
            regions.append(HostRegion.GATEWAY)
        else:
            regions.append(HostRegion.BULK)
    return regions


def region_counts(regions: list[HostRegion]) -> dict[HostRegion, int]:
    """Census of region labels."""
    out = {region: 0 for region in HostRegion}
    for region in regions:
        out[region] += 1
    return out


def relative_host_counts(store: UASampleStore) -> dict[int, int]:
    """Per-/24 relative host count: the unique-UA cardinality.

    This is deliberately *relative*: multiple UAs per device inflate
    it, address sharing deflates it (Sec. 6.3's stated caveats), but
    it orders blocks by host population well enough for Figs. 11/12.
    """
    return {int(base): store.unique_count(int(base)) for base in store.blocks()}
