"""Event-size attribution: how bulky is churn? (Sec. 4.2, Fig. 5b).

For every per-address up event between two windows, the paper finds
the smallest prefix mask *m* such that every address inside the
length-*m* prefix either had an up event itself or showed no activity
in both windows.  Single-address flickers tag as /31–/32; operator
actions renumbering whole ranges tag as /24 or shorter masks.

The implementation is a vectorised neighbour search: for up events,
the "blockers" are exactly the addresses active in the earlier window
(they had activity and no up event), so an event address's tag is
determined by its nearest blockers below and above in address space —
the event's clean prefix must exclude both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset, Snapshot
from repro.errors import DatasetError

#: The histogram buckets of Fig. 5b, as (label, lowest mask, highest mask).
FIG5B_BUCKETS: tuple[tuple[str, int, int], ...] = (
    (">=/16", 0, 16),
    ("/17-/20", 17, 20),
    ("/21-/24", 21, 24),
    ("/25-/28", 25, 28),
    ("/29-/32", 29, 32),
)


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Per-element bit length of non-negative int64 values (exact)."""
    _, exponents = np.frexp(values.astype(np.float64))
    exponents = exponents.astype(np.int64)
    exponents[values == 0] = 0
    return exponents


def tag_event_masks(events: np.ndarray, blockers: np.ndarray) -> np.ndarray:
    """Smallest clean prefix mask per event address.

    ``events`` are the addresses with an up (or down) event;
    ``blockers`` are the addresses whose presence limits the clean
    prefix (for up events: everything active in the earlier window).
    Both may be unsorted; blockers need not be disjoint from events
    (they are by construction, but this is not relied upon).
    """
    events = np.asarray(events, dtype=np.int64)
    if events.size == 0:
        return np.empty(0, dtype=np.int64)
    blockers = np.unique(np.asarray(blockers, dtype=np.int64))
    if blockers.size == 0:
        return np.zeros(events.size, dtype=np.int64)
    pos = np.searchsorted(blockers, events)
    masks = np.zeros(events.size, dtype=np.int64)
    has_above = pos < blockers.size
    above = np.where(has_above, blockers[np.minimum(pos, blockers.size - 1)], 0)
    has_below = pos > 0
    below = np.where(has_below, blockers[np.maximum(pos - 1, 0)], 0)
    # A clean prefix must exclude the neighbour: its mask must be one
    # bit longer than the common prefix shared with that neighbour.
    xor_above = np.where(has_above, events ^ above, 0)
    xor_below = np.where(has_below, events ^ below, 0)
    need_above = np.where(has_above, 32 - _bit_length(xor_above) + 1, 0)
    need_below = np.where(has_below, 32 - _bit_length(xor_below) + 1, 0)
    np.maximum(need_above, need_below, out=masks)
    return np.minimum(masks, 32)


@dataclass(frozen=True)
class EventSizeDistribution:
    """Histogram of event prefix masks for one window size."""

    window_days: int
    masks: np.ndarray  # one entry per event, values 0..32

    @property
    def num_events(self) -> int:
        return int(self.masks.size)

    def mask_histogram(self) -> np.ndarray:
        """Counts per mask length 0..32."""
        return np.bincount(self.masks, minlength=33)

    def fraction_at_most(self, masklen: int) -> float:
        """Fraction of events with mask <= *masklen* (bulkier events)."""
        if self.num_events == 0:
            return 0.0
        return float((self.masks <= masklen).mean())

    def fraction_at_least(self, masklen: int) -> float:
        """Fraction of events with mask >= *masklen* (individual churn)."""
        if self.num_events == 0:
            return 0.0
        return float((self.masks >= masklen).mean())

    def bucket_fractions(self) -> dict[str, float]:
        """The Fig. 5b bars: fraction of events per mask bucket."""
        if self.num_events == 0:
            return {label: 0.0 for label, _, _ in FIG5B_BUCKETS}
        out = {}
        for label, low, high in FIG5B_BUCKETS:
            out[label] = float(((self.masks >= low) & (self.masks <= high)).mean())
        return out


def up_event_sizes(before: Snapshot, after: Snapshot) -> np.ndarray:
    """Masks of all up events between two windows."""
    return tag_event_masks(after.up_from(before), before.ips)


def down_event_sizes(before: Snapshot, after: Snapshot) -> np.ndarray:
    """Masks of all down events between two windows."""
    return tag_event_masks(before.down_to(after), after.ips)


def event_size_distribution(
    dataset: ActivityDataset, window_days: int, direction: str = "up"
) -> EventSizeDistribution:
    """Fig. 5b for one window size: pool event masks over all transitions."""
    if direction not in ("up", "down"):
        raise DatasetError(f"direction must be 'up' or 'down': {direction!r}")
    if dataset.window_days != 1:
        raise DatasetError("event-size analysis expects a daily dataset")
    windowed = dataset.aggregate(window_days)
    if len(windowed) < 2:
        raise DatasetError(f"window size {window_days} leaves fewer than two windows")
    parts = []
    for before, after in zip(windowed.snapshots, windowed.snapshots[1:]):
        if direction == "up":
            parts.append(up_event_sizes(before, after))
        else:
            parts.append(down_event_sizes(before, after))
    masks = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return EventSizeDistribution(window_days=window_days, masks=masks)
