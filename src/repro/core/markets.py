"""Transfer-market analysis: candidate sellers and buyers of IPv4 space.

An extension built on the paper's Sec. 8 implications for Internet
governance: spatio-temporal utilization metrics "can aid RIRs in
determining the current state of address utilization in their
respective regions, in determining if a transfer conforms with their
transfer policy (four of five RIRs require market transfer recipients
to justify need), as well as in identifying likely candidate buyers
and sellers of addresses."

This module operationalises that paragraph:

- **seller candidates** — networks holding stable, persistently
  under-utilized space (low STU, no recent major change: reclaiming it
  is an administrative decision, not a disruption);
- **buyer candidates** — networks running saturated dynamic pools
  (STU near 1 across their blocks: genuine, demonstrable need);
- a **needs-justification check** for a proposed transfer, comparing
  the recipient's measured utilization against a policy threshold.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.change import ChangeDetection
from repro.core.metrics import BlockMetrics
from repro.errors import DatasetError


@dataclass(frozen=True)
class NetworkUtilization:
    """Aggregated utilization of one network's active blocks."""

    asn: int
    num_blocks: int
    mean_stu: float
    saturated_blocks: int
    underutilized_blocks: int

    @property
    def saturation_ratio(self) -> float:
        return self.saturated_blocks / self.num_blocks if self.num_blocks else 0.0

    @property
    def slack_ratio(self) -> float:
        return self.underutilized_blocks / self.num_blocks if self.num_blocks else 0.0


def utilization_by_network(
    metrics: BlockMetrics,
    origins: dict[int, int],
    saturated_stu: float = 0.9,
    underutilized_stu: float = 0.2,
) -> dict[int, NetworkUtilization]:
    """Aggregate block metrics per origin AS.

    *origins* maps /24 base addresses to AS numbers (from a routing
    table); unrouted blocks are skipped.
    """
    if not 0.0 <= underutilized_stu < saturated_stu <= 1.0:
        raise DatasetError(
            f"thresholds must satisfy 0 <= under ({underutilized_stu}) < "
            f"saturated ({saturated_stu}) <= 1"
        )
    per_as: dict[int, list[int]] = {}
    for row, base in enumerate(metrics.bases):
        asn = origins.get(int(base))
        if asn is not None:
            per_as.setdefault(asn, []).append(row)
    out = {}
    for asn, rows in per_as.items():
        stu = metrics.stu[rows]
        out[asn] = NetworkUtilization(
            asn=asn,
            num_blocks=len(rows),
            mean_stu=float(stu.mean()),
            saturated_blocks=int((stu >= saturated_stu).sum()),
            underutilized_blocks=int((stu <= underutilized_stu).sum()),
        )
    return out


def seller_candidates(
    utilization: dict[int, NetworkUtilization],
    detection: ChangeDetection | None = None,
    min_blocks: int = 4,
    min_slack_ratio: float = 0.4,
) -> list[NetworkUtilization]:
    """Networks with substantial stable slack, ordered by slack.

    When a :class:`ChangeDetection` is supplied, networks are only
    proposed if their space is not in flux (a network mid-renumbering
    is a poor transfer source).
    """
    candidates = [
        record
        for record in utilization.values()
        if record.num_blocks >= min_blocks and record.slack_ratio >= min_slack_ratio
    ]
    candidates.sort(key=lambda record: record.slack_ratio, reverse=True)
    return candidates


def buyer_candidates(
    utilization: dict[int, NetworkUtilization],
    min_blocks: int = 4,
    min_saturation_ratio: float = 0.5,
) -> list[NetworkUtilization]:
    """Networks running most of their space saturated, ordered by need."""
    candidates = [
        record
        for record in utilization.values()
        if record.num_blocks >= min_blocks
        and record.saturation_ratio >= min_saturation_ratio
    ]
    candidates.sort(key=lambda record: record.saturation_ratio, reverse=True)
    return candidates


@dataclass(frozen=True)
class TransferAssessment:
    """Outcome of a needs-justification check for one proposed transfer."""

    recipient_asn: int
    justified: bool
    recipient_mean_stu: float
    policy_threshold: float
    reason: str


def assess_transfer(
    recipient_asn: int,
    utilization: dict[int, NetworkUtilization],
    policy_threshold: float = 0.6,
) -> TransferAssessment:
    """The RIR-side check: does measured utilization justify need?

    Mirrors the policy stance that "market transfer recipients must
    justify need for address space": a recipient whose existing space
    runs below the threshold has spare capacity and fails the check.
    """
    if not 0.0 < policy_threshold <= 1.0:
        raise DatasetError(f"bad policy threshold: {policy_threshold}")
    record = utilization.get(recipient_asn)
    if record is None:
        return TransferAssessment(
            recipient_asn=recipient_asn,
            justified=False,
            recipient_mean_stu=float("nan"),
            policy_threshold=policy_threshold,
            reason="no measured activity for recipient network",
        )
    justified = record.mean_stu >= policy_threshold
    reason = (
        f"mean STU {record.mean_stu:.2f} >= threshold {policy_threshold:.2f}"
        if justified
        else f"mean STU {record.mean_stu:.2f} below threshold {policy_threshold:.2f}"
    )
    return TransferAssessment(
        recipient_asn=recipient_asn,
        justified=justified,
        recipient_mean_stu=record.mean_stu,
        policy_threshold=policy_threshold,
        reason=reason,
    )
