"""Activity datasets: the per-IP aggregates the CDN logs boil down to.

Every analysis in the paper consumes one of two shapes of data
(Table 1): *daily* per-IP request counts over 112 days, or *weekly*
aggregates over a year.  Both are sequences of snapshots, where one
snapshot is the pair *(sorted unique active addresses, request counts)*
for one window of time.  An address is **active** in a snapshot iff it
appears in it — i.e. the CDN served at least one successful request —
exactly the paper's definition (Sec. 3.2).

The storage is deliberately sparse and columnar: a snapshot holds two
parallel numpy arrays.  Memory is proportional to active address-days,
so a year of simulated data stays small while set algebra
(up/down events, unions, intersections) runs at numpy speed on sorted
arrays.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.index import DatasetIndex, kway_union
from repro.errors import DatasetError


class Snapshot:
    """Active addresses and their hit counts for one time window.

    Attributes:
        start: First day covered by the window.
        days: Window length in days (1 for daily, 7 for weekly, ...).
        ips: Sorted unique ``uint32`` addresses active in the window.
        hits: ``uint64`` request counts aligned with :attr:`ips`.
    """

    __slots__ = ("days", "hits", "ips", "start")

    def __init__(
        self,
        start: datetime.date,
        days: int,
        ips: np.ndarray,
        hits: np.ndarray | None = None,
    ) -> None:
        if days <= 0:
            raise DatasetError(f"non-positive window length: {days}")
        ips = np.asarray(ips, dtype=np.uint32)
        if ips.ndim != 1:
            raise DatasetError("ips must be one-dimensional")
        if ips.size > 1 and not (ips[1:] > ips[:-1]).all():
            raise DatasetError("snapshot ips must be sorted and unique")
        if hits is None:
            hits = np.ones(ips.size, dtype=np.uint64)
        else:
            hits = np.asarray(hits, dtype=np.uint64)
            if hits.shape != ips.shape:
                raise DatasetError(
                    f"hits shape {hits.shape} does not match ips shape {ips.shape}"
                )
            if ips.size and int(hits.min()) == 0:
                raise DatasetError("active addresses must have at least one hit")
        self.start = start
        self.days = int(days)
        self.ips = ips
        self.hits = hits

    # -- basics --------------------------------------------------------

    @property
    def end(self) -> datetime.date:
        """Last day covered (inclusive)."""
        return self.start + datetime.timedelta(days=self.days - 1)

    @property
    def num_active(self) -> int:
        """Number of active addresses in the window."""
        return int(self.ips.size)

    @property
    def total_hits(self) -> int:
        """Total requests served in the window."""
        return int(self.hits.sum())

    def __repr__(self) -> str:
        return (
            f"Snapshot({self.start.isoformat()}, {self.days}d, "
            f"{self.num_active} IPs, {self.total_hits} hits)"
        )

    def __contains__(self, ip: object) -> bool:
        try:
            value = int(ip)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        pos = int(np.searchsorted(self.ips, value))
        return pos < self.ips.size and int(self.ips[pos]) == value

    def contains_many(self, ips: np.ndarray) -> np.ndarray:
        """Vectorised membership test against this snapshot."""
        arr = np.asarray(ips, dtype=np.uint32)
        pos = np.searchsorted(self.ips, arr)
        inside = pos < self.ips.size
        inside[inside] &= self.ips[pos[inside]] == arr[inside]
        return inside

    def hits_of(self, ip: int) -> int:
        """Requests issued by *ip* in this window (0 if inactive)."""
        pos = int(np.searchsorted(self.ips, ip))
        if pos < self.ips.size and int(self.ips[pos]) == ip:
            return int(self.hits[pos])
        return 0

    # -- set algebra -------------------------------------------------------

    def up_from(self, previous: "Snapshot") -> np.ndarray:
        """Addresses active here but not in *previous* (paper: up events)."""
        return np.setdiff1d(self.ips, previous.ips, assume_unique=True)

    def down_to(self, following: "Snapshot") -> np.ndarray:
        """Addresses active here but not in *following* (paper: down events)."""
        return np.setdiff1d(self.ips, following.ips, assume_unique=True)

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Union the two windows (union of IPs, summed hits).

        The windows must be contiguous in time; the result covers both.
        """
        first, second = (self, other) if self.start <= other.start else (other, self)
        if first.start + datetime.timedelta(days=first.days) != second.start:
            raise DatasetError(
                f"cannot merge non-contiguous windows {first.start}+{first.days}d "
                f"and {second.start}"
            )
        ips = np.union1d(first.ips, second.ips)
        hits = np.zeros(ips.size, dtype=np.uint64)
        for part in (first, second):
            pos = np.searchsorted(ips, part.ips)
            hits[pos] += part.hits
        return Snapshot(first.start, first.days + second.days, ips, hits)


class ActivityDataset:
    """A regular sequence of equally sized, contiguous snapshots.

    ``dropped_days`` records how many trailing source days the
    operation that built this dataset discarded (0 for datasets built
    directly from snapshots) — see :meth:`aggregate` for the
    truncation rule.
    """

    def __init__(
        self, snapshots: Sequence[Snapshot], dropped_days: int = 0
    ) -> None:
        if not snapshots:
            raise DatasetError("a dataset needs at least one snapshot")
        if dropped_days < 0:
            raise DatasetError(f"negative dropped-day count: {dropped_days}")
        days = snapshots[0].days
        for left, right in zip(snapshots, snapshots[1:]):
            if right.days != days:
                raise DatasetError("all snapshots must cover the same window length")
            if left.start + datetime.timedelta(days=days) != right.start:
                raise DatasetError(
                    f"snapshots not contiguous at {right.start.isoformat()}"
                )
        self._snapshots = list(snapshots)
        self._index: DatasetIndex | None = None
        self.dropped_days = int(dropped_days)

    @property
    def index(self) -> DatasetIndex:
        """The memoized :class:`~repro.core.index.DatasetIndex`.

        Computed lazily and shared by every analysis over this dataset;
        safe because datasets are append-never after construction.
        """
        if self._index is None:
            self._index = DatasetIndex(self)
        return self._index

    # -- basics ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self._snapshots[index]

    def __iter__(self):
        return iter(self._snapshots)

    @property
    def snapshots(self) -> list[Snapshot]:
        return list(self._snapshots)

    @property
    def window_days(self) -> int:
        """Days per snapshot (1 = daily dataset, 7 = weekly, ...)."""
        return self._snapshots[0].days

    @property
    def start(self) -> datetime.date:
        return self._snapshots[0].start

    @property
    def end(self) -> datetime.date:
        return self._snapshots[-1].end

    @property
    def total_days(self) -> int:
        """Days covered by the whole dataset."""
        return len(self) * self.window_days

    def __repr__(self) -> str:
        return (
            f"ActivityDataset({len(self)} x {self.window_days}d snapshots "
            f"from {self.start.isoformat()})"
        )

    # -- aggregates ----------------------------------------------------------

    def active_counts(self) -> np.ndarray:
        """Active addresses per snapshot (the Fig. 4a series)."""
        return np.array([snapshot.num_active for snapshot in self], dtype=np.int64)

    def hit_totals(self) -> np.ndarray:
        """Total hits per snapshot."""
        return np.array([snapshot.total_hits for snapshot in self], dtype=np.int64)

    def all_ips(self) -> np.ndarray:
        """Sorted union of addresses active in any snapshot (Table 1 totals).

        Served from the memoized :attr:`index`; the returned array is
        read-only and shared — copy before mutating.
        """
        return self.index.all_ips

    def total_unique(self) -> int:
        """Number of distinct addresses ever active."""
        return int(self.all_ips().size)

    def mean_active(self) -> float:
        """Average active addresses per snapshot (Table 1 averages)."""
        return float(self.active_counts().mean())

    # -- reshaping ------------------------------------------------------------

    def aggregate(self, num_windows: int) -> "ActivityDataset":
        """Merge every *num_windows* consecutive snapshots into one.

        Implements the window aggregation of Fig. 4b: the union of
        active addresses within each larger window.

        Truncation rule: windows never overlap and never straddle the
        end of the data, so the trailing ``len(self) % num_windows``
        snapshots that do not fill a whole window are dropped — the
        paper's non-overlapping-window convention.  The number of
        source *days* discarded this way is exposed as
        ``result.dropped_days`` so callers can account for (or refuse)
        lossy aggregations instead of losing days silently.
        """
        if num_windows <= 0:
            raise DatasetError(f"non-positive aggregation factor: {num_windows}")
        if num_windows == 1:
            # Identity aggregation must not erase the provenance of a
            # prior lossy aggregation.
            return ActivityDataset(self._snapshots, dropped_days=self.dropped_days)
        full = len(self) // num_windows
        if full == 0:
            raise DatasetError(
                f"cannot aggregate {len(self)} snapshots by {num_windows}"
            )
        merged: list[Snapshot] = []
        for group_index in range(full):
            group = self._snapshots[
                group_index * num_windows : (group_index + 1) * num_windows
            ]
            # Snapshots in a dataset are contiguous by construction, so
            # the whole group unions in one k-way pass (no pairwise fold).
            ips, hits = kway_union(group)
            merged.append(
                Snapshot(group[0].start, num_windows * self.window_days, ips, hits)
            )
        dropped = (len(self) - full * num_windows) * self.window_days
        return ActivityDataset(merged, dropped_days=dropped)

    def slice(self, first: int, last: int) -> "ActivityDataset":
        """Dataset restricted to snapshot indexes ``[first, last]``."""
        if not 0 <= first <= last < len(self):
            raise DatasetError(
                f"bad slice [{first}, {last}] for {len(self)} snapshots"
            )
        return ActivityDataset(self._snapshots[first : last + 1])

    def union_snapshot(self, first: int, last: int) -> Snapshot:
        """One merged snapshot over the index range ``[first, last]``."""
        if not 0 <= first <= last < len(self):
            raise DatasetError(
                f"bad union range [{first}, {last}] for {len(self)} snapshots"
            )
        group = self._snapshots[first : last + 1]
        ips, hits = kway_union(group)
        return Snapshot(group[0].start, len(group) * self.window_days, ips, hits)

    # -- per-IP statistics -------------------------------------------------------

    def per_ip_stats(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-address activity summary over the whole dataset.

        Returns ``(ips, windows_active, total_hits)`` where ``ips`` is
        the sorted union of ever-active addresses, ``windows_active``
        counts the snapshots each address appeared in, and
        ``total_hits`` sums its requests.  This is the backbone of the
        activity-vs-traffic analysis (Fig. 9a/9b).

        Served from the memoized :attr:`index`; the arrays are
        read-only and shared — copy before mutating.
        """
        return self.index.per_ip_stats()

    #: Refuse to materialise dense matrices above this many cells.
    _MATRIX_CELL_LIMIT = 200_000_000

    def _check_matrix_size(self, num_rows: int) -> None:
        cells = num_rows * len(self)
        if cells > self._MATRIX_CELL_LIMIT:
            raise DatasetError(
                f"dense matrix of {cells} cells refused; restrict the IP set "
                "or use per_ip_stats() / the streaming analyses instead"
            )

    def presence_matrix(self, ips: np.ndarray | None = None) -> np.ndarray:
        """Boolean activity matrix, shape ``(len(ips), len(self))``.

        Row order follows *ips* (default: the sorted union).  Use for
        block-level spatio-temporal views (Figs. 6/7); for large IP
        sets prefer the streaming per-IP statistics.  Refuses to build
        matrices beyond ~200M cells.
        """
        if ips is None:
            self._check_matrix_size(self.index.all_ips.size)
            matrix = np.zeros((self.index.all_ips.size, len(self)), dtype=bool)
            for column in range(len(self)):
                matrix[self.index.snapshot_positions(column), column] = True
            return matrix
        ips = np.asarray(ips, dtype=np.uint32)
        self._check_matrix_size(ips.size)
        matrix = np.zeros((ips.size, len(self)), dtype=bool)
        for column, snapshot in enumerate(self):
            matrix[:, column] = snapshot.contains_many(ips)
        return matrix

    def hits_matrix(self, ips: np.ndarray | None = None) -> np.ndarray:
        """Per-address, per-snapshot hit counts (0 where inactive)."""
        if ips is None:
            self._check_matrix_size(self.index.all_ips.size)
            matrix = np.zeros((self.index.all_ips.size, len(self)), dtype=np.uint64)
            for column, snapshot in enumerate(self):
                matrix[self.index.snapshot_positions(column), column] = snapshot.hits
            return matrix
        ips = np.asarray(ips, dtype=np.uint32)
        self._check_matrix_size(ips.size)
        matrix = np.zeros((ips.size, len(self)), dtype=np.uint64)
        for column, snapshot in enumerate(self):
            pos = np.searchsorted(snapshot.ips, ips)
            found = pos < snapshot.ips.size
            found[found] &= snapshot.ips[pos[found]] == ips[found]
            matrix[found, column] = snapshot.hits[pos[found]]
        return matrix


def dataset_from_daily_logs(
    start: datetime.date,
    daily_logs: Iterable[tuple[np.ndarray, np.ndarray]],
) -> ActivityDataset:
    """Build a daily dataset from an iterable of ``(ips, hits)`` columns.

    This is the ingestion point mirroring the CDN's distributed
    collection framework: each day contributes the sorted unique client
    addresses and their request counts.
    """
    snapshots = []
    day = start
    for ips, hits in daily_logs:
        snapshots.append(Snapshot(day, 1, ips, hits))
        day += datetime.timedelta(days=1)
    if not snapshots:
        raise DatasetError("no daily logs provided")
    return ActivityDataset(snapshots)
