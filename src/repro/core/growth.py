"""Growth-trend analysis: the stagnation of IPv4 (Sec. 2, Fig. 1).

Fig. 1's message is carried by two statistics computed here from a
monthly count series:

- a linear regression of the counts up to January 2014, which fits the
  pre-stagnation era almost perfectly (the paper draws this line), and
- a changepoint estimate locating where growth actually broke, found
  by minimising the combined squared error of a two-segment piecewise
  linear fit.

The analysis is generator-agnostic: it runs on the synthetic series of
:mod:`repro.sim.growth` or on any real monthly count series.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.sim.growth import MonthlySeries


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line with goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.intercept + self.slope * np.asarray(x)


def fit_line(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Least-squares fit with R^2 (perfect fit on constant y is 1.0)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise DatasetError("need at least two aligned points to fit")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = intercept + slope * x
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def fit_until(series: MonthlySeries, cutoff: datetime.date) -> LinearFit:
    """The Fig. 1 regression: fit the counts of months before *cutoff*."""
    subset = series.slice_until(cutoff)
    return fit_line(np.arange(len(subset)), subset.counts)


@dataclass(frozen=True)
class StagnationAnalysis:
    """Where growth broke, and how hard."""

    changepoint_index: int
    changepoint_month: datetime.date
    pre_fit: LinearFit
    post_fit: LinearFit

    @property
    def slope_collapse(self) -> float:
        """Post-slope over pre-slope; near zero for a hard stagnation."""
        if self.pre_fit.slope == 0:
            return float("nan")
        return self.post_fit.slope / self.pre_fit.slope


def detect_stagnation(
    series: MonthlySeries, min_segment: int = 6
) -> StagnationAnalysis:
    """Locate the growth changepoint by two-segment least squares.

    Scans every admissible breakpoint (leaving *min_segment* months on
    both sides), fits a line to each segment, and picks the breakpoint
    with the lowest combined squared error.  On a ramp-then-plateau
    series this lands at the plateau's start.
    """
    counts = np.asarray(series.counts, dtype=np.float64)
    n = counts.size
    if n < 2 * min_segment + 1:
        raise DatasetError(
            f"series of {n} months too short for segments of {min_segment}"
        )
    x = np.arange(n, dtype=np.float64)
    best_index = -1
    best_error = np.inf
    for breakpoint in range(min_segment, n - min_segment):
        left = fit_line(x[:breakpoint], counts[:breakpoint])
        right = fit_line(x[breakpoint:], counts[breakpoint:])
        error = float(
            ((counts[:breakpoint] - left.predict(x[:breakpoint])) ** 2).sum()
            + ((counts[breakpoint:] - right.predict(x[breakpoint:])) ** 2).sum()
        )
        if error < best_error:
            best_error = error
            best_index = breakpoint
    pre = fit_line(x[:best_index], counts[:best_index])
    post = fit_line(x[best_index:], counts[best_index:])
    return StagnationAnalysis(
        changepoint_index=best_index,
        changepoint_month=series.months[best_index],
        pre_fit=pre,
        post_fit=post,
    )


def projection_gap(series: MonthlySeries, analysis: StagnationAnalysis) -> float:
    """How far below the pre-trend projection the series ends.

    The paper's visual: extending the pre-2014 line to the end of the
    series overshoots the observed plateau.  Returns the relative gap
    ``(projected - observed) / observed`` at the final month.
    """
    final_index = len(series) - 1
    projected = float(analysis.pre_fit.predict(final_index))
    observed = float(series.counts[final_index])
    if observed <= 0:
        raise DatasetError("non-positive final observation")
    return (projected - observed) / observed
