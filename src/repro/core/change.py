"""Change detection: stable vs. restructured blocks (Sec. 5.2, Fig. 8a).

The paper's first-order partition of the active space: compute each
/24's spatio-temporal utilization per month, take the month-to-month
difference with the largest magnitude, and call the block *major
change* when that difference exceeds ±0.25.  About 9.8% of active
blocks cross the threshold — these are the reallocated, reconfigured,
or repurposed blocks of Fig. 7; the remaining ~90% are *in situ*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.core.metrics import monthly_stu
from repro.errors import DatasetError

#: The paper's major-change threshold on |ΔSTU| (Sec. 5.2).
DEFAULT_CHANGE_THRESHOLD = 0.25


@dataclass(frozen=True)
class ChangeDetection:
    """Per-block maximum monthly STU change and the major/minor split."""

    bases: np.ndarray
    max_change: np.ndarray  # signed; the entry with the largest |value|
    threshold: float

    def __post_init__(self) -> None:
        if self.bases.size != self.max_change.size:
            raise DatasetError("misaligned change-detection arrays")
        if not 0.0 < self.threshold <= 1.0:
            raise DatasetError(f"bad change threshold: {self.threshold}")

    @property
    def major_mask(self) -> np.ndarray:
        return np.abs(self.max_change) > self.threshold

    @property
    def major_fraction(self) -> float:
        """Fraction of active blocks with major change (paper: ~9.8%)."""
        if self.bases.size == 0:
            return 0.0
        return float(self.major_mask.mean())

    @property
    def major_bases(self) -> np.ndarray:
        return self.bases[self.major_mask]

    @property
    def stable_bases(self) -> np.ndarray:
        return self.bases[~self.major_mask]

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted (x, F(x)) of the Fig. 8a CDF over signed max changes."""
        values = np.sort(self.max_change)
        return values, np.arange(1, values.size + 1) / values.size


def detect_change(
    dataset: ActivityDataset,
    month_days: int = 28,
    threshold: float = DEFAULT_CHANGE_THRESHOLD,
) -> ChangeDetection:
    """Fig. 8a: the max month-to-month STU change per active /24.

    The sign of the reported change is kept (a block switched off shows
    a negative change, a lit-up block a positive one); the magnitude is
    compared against *threshold* for the major/minor split.
    """
    bases, stu = monthly_stu(dataset, month_days)
    if stu.shape[1] < 2:
        raise DatasetError("change detection needs at least two months")
    diffs = np.diff(stu, axis=1)
    # Pick, per block, the diff with the largest magnitude (signed).
    arg = np.argmax(np.abs(diffs), axis=1)
    max_change = diffs[np.arange(diffs.shape[0]), arg]
    return ChangeDetection(bases=bases, max_change=max_change, threshold=threshold)


def threshold_sensitivity(
    detection: ChangeDetection, thresholds: np.ndarray | list[float]
) -> dict[float, float]:
    """Major-change fraction as a function of the threshold.

    The paper picks ±0.25 "based on anecdotal examination"; this sweep
    (used by the ablation benchmark) shows how the stable/major split
    would move under other choices.
    """
    out = {}
    for threshold in thresholds:
        if not 0.0 < threshold <= 1.0:
            raise DatasetError(f"bad threshold in sweep: {threshold}")
        out[float(threshold)] = float((np.abs(detection.max_change) > threshold).mean())
    return out
