"""Potential utilization: how much active space is reclaimable (Sec. 5.4).

The paper's back-of-envelope on already-active blocks: sparsely filled
blocks (FD < 64, mostly static assignment) could be densified by
switching to dynamic pools, and a third of the dynamic pools run at low
utilization and could simply be shrunk.  This module turns those
observations into an explicit report with address-count estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.addressing import HIGH_FD_THRESHOLD, LOW_FD_THRESHOLD
from repro.core.metrics import BLOCK_SIZE, BlockMetrics
from repro.errors import DatasetError
from repro.rdns.classify import AssignmentTag


@dataclass(frozen=True)
class PotentialReport:
    """Sec. 5.4 quantities over one set of active blocks."""

    total_blocks: int
    low_fd_blocks: int
    low_fd_static_tagged: int
    low_fd_dynamic_tagged: int
    dynamic_pool_blocks: int
    underutilized_pool_blocks: int
    reclaimable_addresses: int

    @property
    def low_fd_fraction(self) -> float:
        """Fraction of active blocks with FD < 64 (paper: >30%)."""
        return self.low_fd_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def underutilized_pool_fraction(self) -> float:
        """Fraction of dynamic pools with low STU (paper: ~one third)."""
        if self.dynamic_pool_blocks == 0:
            return 0.0
        return self.underutilized_pool_blocks / self.dynamic_pool_blocks


def potential_utilization(
    metrics: BlockMetrics,
    tags: dict[int, AssignmentTag] | None = None,
    low_stu_threshold: float = 0.6,
    pool_target_stu: float = 0.8,
) -> PotentialReport:
    """Quantify densification potential within already-active blocks.

    Reclaimable addresses are estimated conservatively, per
    under-utilized dynamic pool (FD > 250, STU < *low_stu_threshold*):
    shrinking the pool so it would run at *pool_target_stu* frees
    ``256 * (1 - stu / pool_target_stu)`` addresses.
    """
    if not 0.0 < low_stu_threshold < pool_target_stu <= 1.0:
        raise DatasetError(
            f"thresholds must satisfy 0 < low ({low_stu_threshold}) < "
            f"target ({pool_target_stu}) <= 1"
        )
    tags = tags or {}
    fd = metrics.filling_degree
    stu = metrics.stu

    low_fd_mask = fd < LOW_FD_THRESHOLD
    low_fd_bases = metrics.bases[low_fd_mask]
    static_tagged = sum(
        1 for base in low_fd_bases if tags.get(int(base)) is AssignmentTag.STATIC
    )
    dynamic_tagged = sum(
        1 for base in low_fd_bases if tags.get(int(base)) is AssignmentTag.DYNAMIC
    )

    pool_mask = fd > HIGH_FD_THRESHOLD
    under_mask = pool_mask & (stu < low_stu_threshold)
    reclaimable = BLOCK_SIZE * (1.0 - stu[under_mask] / pool_target_stu)
    return PotentialReport(
        total_blocks=metrics.num_blocks,
        low_fd_blocks=int(low_fd_mask.sum()),
        low_fd_static_tagged=static_tagged,
        low_fd_dynamic_tagged=dynamic_tagged,
        dynamic_pool_blocks=int(pool_mask.sum()),
        underutilized_pool_blocks=int(under_mask.sum()),
        reclaimable_addresses=int(np.floor(reclaimable).sum()),
    )
