"""Shared per-dataset index: the sorted union and its projections.

Every analysis in the paper starts from the same handful of derived
arrays: the sorted union of ever-active addresses (Table 1 totals),
the position of each snapshot's addresses inside that union (the
``searchsorted`` projection behind churn, traffic, and per-AS views),
per-address activity summaries (Fig. 9), and the /24 block keys with
their per-snapshot scatter indices (Figs. 6–8).  Before this module
existed each figure recomputed those from scratch; on a multi-million
address dataset the union step alone dominated every analysis pass.

:class:`DatasetIndex` computes each of these layers lazily, exactly
once, and memoizes the result.  Memoization is safe because
:class:`~repro.core.dataset.Snapshot` and
:class:`~repro.core.dataset.ActivityDataset` are append-never after
construction: a dataset's snapshots, and therefore every projection
derived from them, cannot change.  All cached arrays are returned
read-only so an accidental in-place edit cannot poison the cache.

The union itself is built in a single k-way pass — one concatenation
plus one ``np.unique(return_inverse=True)`` — instead of a pairwise
left-fold of two-way merges, which turns window-aggregation sweeps
(Fig. 4b) from quadratic in the window size into linear.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DatasetError
from repro.net.ipv4 import blocks_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.dataset import ActivityDataset, Snapshot


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark a cache-owned array read-only and return it."""
    array.flags.writeable = False
    return array


def kway_union_columns(
    ips_parts: Sequence[np.ndarray], hits_parts: Sequence[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Single-pass union of raw ``(ips, hits)`` columns.

    The core of :func:`kway_union`, usable on bare arrays — the shape
    shard slices arrive in — without wrapping them in snapshots.  Each
    ``ips`` part must be sorted unique (within itself); parts may
    overlap each other.  Hit totals are accumulated in exact ``uint64``
    arithmetic.
    """
    if not ips_parts:
        return np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint64)
    if len(ips_parts) == 1:
        return ips_parts[0].copy(), hits_parts[0].copy()
    all_ips = np.concatenate(ips_parts)
    ips, inverse = np.unique(all_ips, return_inverse=True)
    hits = np.zeros(ips.size, dtype=np.uint64)
    # inverse has duplicates across parts but not within one (each
    # part's addresses are unique), so scatter per part with plain
    # fancy-index addition instead of the slow np.add.at.
    start = 0
    for part_ips, part_hits in zip(ips_parts, hits_parts):
        stop = start + part_ips.size
        hits[inverse[start:stop]] += part_hits
        start = stop
    return ips, hits


def kway_union(snapshots) -> tuple[np.ndarray, np.ndarray]:
    """Single-pass union of many snapshots: ``(sorted ips, summed hits)``.

    Replaces the pairwise ``Snapshot.merge`` left-fold: one
    concatenation, one sort-based ``unique``, one integer scatter-add.
    Hit totals are accumulated in exact ``uint64`` arithmetic.  The
    result is bit-identical to folding ``merge`` over the snapshots.
    """
    return kway_union_columns(
        [snapshot.ips for snapshot in snapshots],
        [snapshot.hits for snapshot in snapshots],
    )


def iter_union_runs(
    slice_groups: Iterable[tuple[Sequence[np.ndarray], Sequence[np.ndarray]]],
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Streaming k-way union: one sorted ``(ips, hits)`` run per slice.

    *slice_groups* yields ``(ips_parts, hits_parts)`` pairs, one per
    address-range slice in ascending address order — in practice one
    per store shard (:mod:`repro.core.store`).  Each yielded run is the
    deduplicated, hit-summed union of that slice's columns; empty
    slices are skipped.  Runs are validated to be strictly ascending
    across slices, so concatenating every run reproduces the full
    :func:`kway_union` of the dataset — which this generator never
    materializes: peak memory is one slice's columns plus one run.
    """
    previous_max = -1
    for ips_parts, hits_parts in slice_groups:
        ips, hits = kway_union_columns(list(ips_parts), list(hits_parts))
        if ips.size == 0:
            continue
        if int(ips[0]) <= previous_max:
            raise DatasetError(
                "union runs out of order: a slice starting at "
                f"{int(ips[0]):#010x} overlaps the previous run ending at "
                f"{previous_max:#010x} — slices must cover disjoint, "
                "ascending address ranges"
            )
        previous_max = int(ips[-1])
        yield ips, hits


class DatasetIndex:
    """Lazily computed, memoized projections of one :class:`ActivityDataset`.

    Layers (each computed on first use, then cached):

    - :attr:`all_ips` — sorted union of ever-active addresses;
    - :meth:`snapshot_positions` — per snapshot, the positions of its
      addresses inside :attr:`all_ips`;
    - :attr:`windows_active` / :attr:`total_hits` — per union address,
      the number of snapshots it appears in and its exact ``uint64``
      request total;
    - :attr:`block_bases` / :attr:`ip_block_index` /
      :meth:`snapshot_block_index` — the /24 layer: sorted block base
      addresses, each union address's block row, and per-snapshot
      block scatter indices ready for ``bincount``.

    Obtain one via ``dataset.index``; constructing your own bypasses
    the per-dataset memoization.
    """

    __slots__ = (
        "_block_bases",
        "_dataset",
        "_ip_block_index",
        "_ips",
        "_positions",
        "_total_hits",
        "_windows_active",
    )

    def __init__(self, dataset: "ActivityDataset") -> None:
        self._dataset = dataset
        self._ips: np.ndarray | None = None
        self._positions: list[np.ndarray] | None = None
        self._windows_active: np.ndarray | None = None
        self._total_hits: np.ndarray | None = None
        self._block_bases: np.ndarray | None = None
        self._ip_block_index: np.ndarray | None = None

    # -- union layer ---------------------------------------------------------

    def _ensure_union(self) -> None:
        if self._ips is not None:
            return
        snapshots = list(self._dataset)
        concatenated = np.concatenate([snapshot.ips for snapshot in snapshots])
        ips, inverse = np.unique(concatenated, return_inverse=True)
        bounds = np.cumsum([snapshot.ips.size for snapshot in snapshots])
        self._positions = [
            _frozen(part.astype(np.int64, copy=False))
            for part in np.split(inverse, bounds[:-1])
        ]
        self._ips = _frozen(ips)

    @property
    def all_ips(self) -> np.ndarray:
        """Sorted union of addresses active in any snapshot (read-only)."""
        self._ensure_union()
        return self._ips

    def snapshot_positions(self, index: int) -> np.ndarray:
        """Positions of snapshot *index*'s addresses inside :attr:`all_ips`.

        Equivalent to ``np.searchsorted(all_ips, dataset[index].ips)``,
        computed once for every snapshot in the same pass as the union.
        """
        self._ensure_union()
        return self._positions[index]

    def positions_of(self, ips: np.ndarray) -> np.ndarray:
        """Positions of *ips* (a subset of the union) inside :attr:`all_ips`."""
        return np.searchsorted(self.all_ips, np.asarray(ips, dtype=np.uint32))

    # -- per-address layer ---------------------------------------------------

    def _ensure_per_ip(self) -> None:
        if self._windows_active is not None:
            return
        self._ensure_union()
        # int32 counts *windows* an IP was active in — bounded by the
        # snapshot count (hundreds), nowhere near overflow — and halves
        # the per-address footprint of paper-scale unions.
        windows_active = np.zeros(self._ips.size, dtype=np.int32)  # bounded by len(dataset)
        total_hits = np.zeros(self._ips.size, dtype=np.uint64)
        for position, snapshot in zip(self._positions, self._dataset):
            # Positions within one snapshot are unique (its addresses
            # are), so plain fancy-index addition is exact and avoids
            # the much slower np.add.at general scatter.
            windows_active[position] += 1
            total_hits[position] += snapshot.hits
        self._windows_active = _frozen(windows_active)
        self._total_hits = _frozen(total_hits)

    @property
    def windows_active(self) -> np.ndarray:
        """Per union address, the number of snapshots it appears in."""
        self._ensure_per_ip()
        return self._windows_active

    @property
    def total_hits(self) -> np.ndarray:
        """Per union address, its exact ``uint64`` request total."""
        self._ensure_per_ip()
        return self._total_hits

    def per_ip_stats(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The Fig. 9 backbone: ``(ips, windows_active, total_hits)``."""
        return self.all_ips, self.windows_active, self.total_hits

    # -- /24 block layer -----------------------------------------------------

    def _ensure_blocks(self) -> None:
        if self._block_bases is not None:
            return
        blocks = blocks_of(self.all_ips, 24)
        bases, ip_block_index = np.unique(blocks, return_inverse=True)
        self._block_bases = _frozen(bases)
        self._ip_block_index = _frozen(ip_block_index.astype(np.int64, copy=False))

    @property
    def block_bases(self) -> np.ndarray:
        """Sorted /24 base addresses with any activity in the dataset."""
        self._ensure_blocks()
        return self._block_bases

    @property
    def ip_block_index(self) -> np.ndarray:
        """Per union address, the row of its /24 inside :attr:`block_bases`."""
        self._ensure_blocks()
        return self._ip_block_index

    @property
    def block_filling_degree(self) -> np.ndarray:
        """Distinct ever-active addresses per /24 (the Sec. 5.1 FD)."""
        return np.bincount(self.ip_block_index, minlength=self.block_bases.size)

    def snapshot_block_index(self, index: int) -> np.ndarray:
        """Per address of snapshot *index*, its :attr:`block_bases` row.

        Ready to feed ``np.bincount(..., minlength=block_bases.size)``
        for per-snapshot block activity scatters.
        """
        return self.ip_block_index[self.snapshot_positions(index)]
