"""Up/down events and churn percentages (Sec. 4.1, Figs. 4a/4b).

The paper defines an **up event** for an address that is absent in one
window but present in the next, and a **down event** for the reverse.
The headline findings these functions reproduce:

- ~8% of active addresses come and go between consecutive days, with
  weekday/weekend swings up to ~14% (Fig. 4a/4b at x=1);
- churn does *not* vanish at coarser granularity: at 7-day windows and
  beyond it plateaus around 5% (Fig. 4b) — the set of active addresses
  is in constant flux at every timescale.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.core.windows import (
    PAPER_WINDOW_SIZES,
    aggregate_to_window,
    usable_window_sizes,
)
from repro.errors import DatasetError
from repro.obs import context as obs


@dataclass(frozen=True)
class TransitionChurn:
    """Churn between one pair of consecutive windows."""

    up_count: int
    down_count: int
    active_before: int
    active_after: int

    @property
    def up_fraction(self) -> float:
        """Up events over the later window's active count (paper's def.)."""
        return self.up_count / self.active_after if self.active_after else 0.0

    @property
    def down_fraction(self) -> float:
        """Down events over the earlier window's active count."""
        return self.down_count / self.active_before if self.active_before else 0.0


@dataclass(frozen=True)
class ChurnSummary:
    """Min/median/max of up/down fractions over all transitions.

    The statistics require at least one transition; accessing any of
    them on an empty summary raises a clear
    :class:`~repro.errors.DatasetError` instead of numpy's cryptic
    zero-size reduction error.
    """

    window_days: int
    transitions: tuple[TransitionChurn, ...]

    def _fractions(self, which: str) -> np.ndarray:
        if not self.transitions:
            raise DatasetError(
                f"churn summary for {self.window_days}d windows has no "
                "transitions — need at least two windows to measure churn"
            )
        return np.array([getattr(t, which) for t in self.transitions])

    @property
    def up_min(self) -> float:
        return float(self._fractions("up_fraction").min())

    @property
    def up_median(self) -> float:
        return float(np.median(self._fractions("up_fraction")))

    @property
    def up_max(self) -> float:
        return float(self._fractions("up_fraction").max())

    @property
    def down_min(self) -> float:
        return float(self._fractions("down_fraction").min())

    @property
    def down_median(self) -> float:
        return float(np.median(self._fractions("down_fraction")))

    @property
    def down_max(self) -> float:
        return float(self._fractions("down_fraction").max())


def transition_churn(dataset: ActivityDataset) -> list[TransitionChurn]:
    """Churn for every consecutive window pair of *dataset*."""
    if len(dataset) < 2:
        raise DatasetError("need at least two windows to measure churn")
    out = []
    with obs.span("analyze/churn/transitions"):
        for before, after in zip(dataset.snapshots, dataset.snapshots[1:]):
            ups = after.up_from(before)
            downs = before.down_to(after)
            out.append(
                TransitionChurn(
                    up_count=int(ups.size),
                    down_count=int(downs.size),
                    active_before=before.num_active,
                    active_after=after.num_active,
                )
            )
        obs.add("analyze_churn_transitions_total", len(out))
    return out


def daily_churn(dataset: ActivityDataset) -> ChurnSummary:
    """Fig. 4a's companion numbers: daily up/down event statistics."""
    if dataset.window_days != 1:
        raise DatasetError("daily churn expects a daily dataset")
    return ChurnSummary(1, tuple(transition_churn(dataset)))


def up_down_event_series(dataset: ActivityDataset) -> tuple[np.ndarray, np.ndarray]:
    """Per-transition up/down event counts (the Fig. 4a bars)."""
    transitions = transition_churn(dataset)
    ups = np.array([t.up_count for t in transitions], dtype=np.int64)
    downs = np.array([t.down_count for t in transitions], dtype=np.int64)
    return ups, downs


def churn_by_window_size(
    dataset: ActivityDataset, window_sizes: Sequence[int] | None = None
) -> dict[int, ChurnSummary]:
    """The Fig. 4b sweep: churn statistics per aggregation window size.

    For every window size, the daily dataset is partitioned into
    non-overlapping unions and churn measured between consecutive
    windows; the caller typically plots min/median/max per size.

    Window sizes that leave fewer than two windows (no transition to
    measure) are filtered out, whether the sizes came from the default
    :func:`~repro.core.windows.usable_window_sizes` sweep or were
    passed explicitly — both paths apply the same rule.  If *no*
    requested size is usable the sweep raises a clear
    :class:`~repro.errors.DatasetError` rather than returning an empty
    dict that downstream statistics would trip over.
    """
    if dataset.window_days != 1:
        raise DatasetError("the window-size sweep expects a daily dataset")
    if window_sizes is None:
        candidates: Sequence[int] = PAPER_WINDOW_SIZES
    else:
        candidates = list(window_sizes)
        for size in candidates:
            if size < 1:
                raise DatasetError(f"bad window size: {size}")
    sizes = usable_window_sizes(dataset, candidates)
    if not sizes:
        raise DatasetError(
            f"no usable window sizes in {list(candidates)}: every size leaves "
            f"fewer than two windows over {len(dataset)} days"
        )
    out: dict[int, ChurnSummary] = {}
    for size in sizes:
        windowed = aggregate_to_window(dataset, size)
        out[size] = ChurnSummary(size, tuple(transition_churn(windowed)))
    return out


def churn_plateau(summaries: dict[int, ChurnSummary], from_size: int = 7) -> float:
    """Median up-churn across window sizes >= *from_size*.

    The paper's striking observation is that this does not decay to
    zero — it sits near 5% for weekly and coarser windows.
    """
    values = [
        summary.up_median for size, summary in summaries.items() if size >= from_size
    ]
    if not values:
        raise DatasetError(f"no window sizes >= {from_size} in summary dict")
    return float(np.median(values))
