"""Up/down events and churn percentages (Sec. 4.1, Figs. 4a/4b).

The paper defines an **up event** for an address that is absent in one
window but present in the next, and a **down event** for the reverse.
The headline findings these functions reproduce:

- ~8% of active addresses come and go between consecutive days, with
  weekday/weekend swings up to ~14% (Fig. 4a/4b at x=1);
- churn does *not* vanish at coarser granularity: at 7-day windows and
  beyond it plateaus around 5% (Fig. 4b) — the set of active addresses
  is in constant flux at every timescale.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.core.windows import (
    PAPER_WINDOW_SIZES,
    aggregate_to_window,
    usable_window_sizes,
)
from repro.errors import DatasetError
from repro.obs import context as obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.store import DatasetStore


@dataclass(frozen=True)
class TransitionChurn:
    """Churn between one pair of consecutive windows."""

    up_count: int
    down_count: int
    active_before: int
    active_after: int

    @property
    def up_fraction(self) -> float:
        """Up events over the later window's active count (paper's def.)."""
        return self.up_count / self.active_after if self.active_after else 0.0

    @property
    def down_fraction(self) -> float:
        """Down events over the earlier window's active count."""
        return self.down_count / self.active_before if self.active_before else 0.0


@dataclass(frozen=True)
class ChurnSummary:
    """Min/median/max of up/down fractions over all transitions.

    The statistics require at least one transition; accessing any of
    them on an empty summary raises a clear
    :class:`~repro.errors.DatasetError` instead of numpy's cryptic
    zero-size reduction error.
    """

    window_days: int
    transitions: tuple[TransitionChurn, ...]

    def _fractions(self, which: str) -> np.ndarray:
        if not self.transitions:
            raise DatasetError(
                f"churn summary for {self.window_days}d windows has no "
                "transitions — need at least two windows to measure churn"
            )
        return np.array([getattr(t, which) for t in self.transitions])

    @property
    def up_min(self) -> float:
        return float(self._fractions("up_fraction").min())

    @property
    def up_median(self) -> float:
        return float(np.median(self._fractions("up_fraction")))

    @property
    def up_max(self) -> float:
        return float(self._fractions("up_fraction").max())

    @property
    def down_min(self) -> float:
        return float(self._fractions("down_fraction").min())

    @property
    def down_median(self) -> float:
        return float(np.median(self._fractions("down_fraction")))

    @property
    def down_max(self) -> float:
        return float(self._fractions("down_fraction").max())


def transition_churn(dataset: ActivityDataset) -> list[TransitionChurn]:
    """Churn for every consecutive window pair of *dataset*."""
    if len(dataset) < 2:
        raise DatasetError("need at least two windows to measure churn")
    out = []
    with obs.span("analyze/churn/transitions"):
        for before, after in zip(dataset.snapshots, dataset.snapshots[1:]):
            ups = after.up_from(before)
            downs = before.down_to(after)
            out.append(
                TransitionChurn(
                    up_count=int(ups.size),
                    down_count=int(downs.size),
                    active_before=before.num_active,
                    active_after=after.num_active,
                )
            )
        obs.add("analyze_churn_transitions_total", len(out))
    return out


def daily_churn(dataset: ActivityDataset) -> ChurnSummary:
    """Fig. 4a's companion numbers: daily up/down event statistics."""
    if dataset.window_days != 1:
        raise DatasetError("daily churn expects a daily dataset")
    return ChurnSummary(1, tuple(transition_churn(dataset)))


def up_down_event_series(dataset: ActivityDataset) -> tuple[np.ndarray, np.ndarray]:
    """Per-transition up/down event counts (the Fig. 4a bars)."""
    transitions = transition_churn(dataset)
    ups = np.array([t.up_count for t in transitions], dtype=np.int64)
    downs = np.array([t.down_count for t in transitions], dtype=np.int64)
    return ups, downs


def churn_by_window_size(
    dataset: ActivityDataset, window_sizes: Sequence[int] | None = None
) -> dict[int, ChurnSummary]:
    """The Fig. 4b sweep: churn statistics per aggregation window size.

    For every window size, the daily dataset is partitioned into
    non-overlapping unions and churn measured between consecutive
    windows; the caller typically plots min/median/max per size.

    Window sizes that leave fewer than two windows (no transition to
    measure) are filtered out, whether the sizes came from the default
    :func:`~repro.core.windows.usable_window_sizes` sweep or were
    passed explicitly — both paths apply the same rule.  If *no*
    requested size is usable the sweep raises a clear
    :class:`~repro.errors.DatasetError` rather than returning an empty
    dict that downstream statistics would trip over.
    """
    if dataset.window_days != 1:
        raise DatasetError("the window-size sweep expects a daily dataset")
    if window_sizes is None:
        candidates: Sequence[int] = PAPER_WINDOW_SIZES
    else:
        candidates = list(window_sizes)
        for size in candidates:
            if size < 1:
                raise DatasetError(f"bad window size: {size}")
    sizes = usable_window_sizes(dataset, candidates)
    if not sizes:
        raise DatasetError(
            f"no usable window sizes in {list(candidates)}: every size leaves "
            f"fewer than two windows over {len(dataset)} days"
        )
    out: dict[int, ChurnSummary] = {}
    for size in sizes:
        windowed = aggregate_to_window(dataset, size)
        out[size] = ChurnSummary(size, tuple(transition_churn(windowed)))
    return out


def transition_churn_streamed(store: "DatasetStore") -> list[TransitionChurn]:
    """Churn for every consecutive window pair, streamed over a store.

    Produces exactly ``transition_churn(store.to_dataset())`` — the
    in-memory function is the reference spec — in constant memory:
    up/down events between two windows decompose over the store's
    disjoint address ranges, so each shard folds its counts into the
    per-transition accumulators while holding only two columns at a
    time.
    """
    if store.num_snapshots < 2:
        raise DatasetError("need at least two windows to measure churn")
    num_snapshots = store.num_snapshots
    with obs.span("analyze/churn/transitions_streamed"):
        ups = np.zeros(num_snapshots - 1, dtype=np.int64)
        downs = np.zeros(num_snapshots - 1, dtype=np.int64)
        active = np.zeros(num_snapshots, dtype=np.int64)
        for shard in store.shards:
            # try/finally, not happy-path close: an exception mid-fold
            # must not leak the shard's open RawNpzReader handle.
            try:
                before = shard.columns(0)[0]
                active[0] += before.size
                for position in range(1, num_snapshots):
                    after = shard.columns(position)[0]
                    active[position] += after.size
                    ups[position - 1] += np.setdiff1d(
                        after, before, assume_unique=True
                    ).size
                    downs[position - 1] += np.setdiff1d(
                        before, after, assume_unique=True
                    ).size
                    before = after
            finally:
                shard.close()
        out = [
            TransitionChurn(
                up_count=int(ups[position]),
                down_count=int(downs[position]),
                active_before=int(active[position]),
                active_after=int(active[position + 1]),
            )
            for position in range(num_snapshots - 1)
        ]
        obs.add("analyze_churn_transitions_total", len(out))
    return out


def daily_churn_streamed(store: "DatasetStore") -> ChurnSummary:
    """Streamed equivalent of :func:`daily_churn` over a store."""
    if store.window_days != 1:
        raise DatasetError("daily churn expects a daily dataset")
    return ChurnSummary(1, tuple(transition_churn_streamed(store)))


def churn_by_window_size_streamed(
    store: "DatasetStore", window_sizes: Sequence[int] | None = None
) -> dict[int, ChurnSummary]:
    """Streamed equivalent of :func:`churn_by_window_size` over a store.

    Same filtering, truncation, and error contract as the in-memory
    sweep; per shard, every window size's unions are built from that
    shard's daily columns (bounded by one shard's data) and the
    up/down/active counts folded into global accumulators — window
    unions restricted to disjoint address ranges partition the full
    window union, so every count matches the reference exactly.
    """
    if store.window_days != 1:
        raise DatasetError("the window-size sweep expects a daily dataset")
    if window_sizes is None:
        candidates: Sequence[int] = PAPER_WINDOW_SIZES
    else:
        candidates = list(window_sizes)
        for size in candidates:
            if size < 1:
                raise DatasetError(f"bad window size: {size}")
    num_days = store.num_snapshots
    sizes = [size for size in candidates if num_days // size >= 2]
    if not sizes:
        raise DatasetError(
            f"no usable window sizes in {list(candidates)}: every size leaves "
            f"fewer than two windows over {num_days} days"
        )
    empty = np.empty(0, dtype=np.uint32)
    ups: dict[int, np.ndarray] = {}
    downs: dict[int, np.ndarray] = {}
    active: dict[int, np.ndarray] = {}
    for size in sizes:
        num_windows = num_days // size
        ups[size] = np.zeros(num_windows - 1, dtype=np.int64)
        downs[size] = np.zeros(num_windows - 1, dtype=np.int64)
        active[size] = np.zeros(num_windows, dtype=np.int64)
    with obs.span("analyze/churn/window_sweep_streamed"):
        for shard in store.shards:
            # try/finally, not happy-path close: an exception mid-sweep
            # must not leak the shard's open RawNpzReader handle.
            try:
                columns = [
                    shard.columns(position)[0] for position in range(num_days)
                ]
                for size in sizes:
                    num_windows = num_days // size
                    previous: np.ndarray | None = None
                    for window in range(num_windows):
                        parts = [
                            column
                            for column in columns[window * size : (window + 1) * size]
                            if column.size
                        ]
                        if not parts:
                            union = empty
                        elif len(parts) == 1:
                            union = parts[0]
                        else:
                            union = np.unique(np.concatenate(parts))  # bounded: one shard
                        active[size][window] += union.size
                        if previous is not None:
                            ups[size][window - 1] += np.setdiff1d(
                                union, previous, assume_unique=True
                            ).size
                            downs[size][window - 1] += np.setdiff1d(
                                previous, union, assume_unique=True
                            ).size
                        previous = union
            finally:
                shard.close()
    out: dict[int, ChurnSummary] = {}
    for size in sizes:
        transitions = tuple(
            TransitionChurn(
                up_count=int(ups[size][window]),
                down_count=int(downs[size][window]),
                active_before=int(active[size][window]),
                active_after=int(active[size][window + 1]),
            )
            for window in range(num_days // size - 1)
        )
        out[size] = ChurnSummary(size, transitions)
    return out


class IncrementalChurn:
    """Transition churn maintained one appended window at a time.

    The live-observatory service's incremental twin of
    :func:`transition_churn`: each :meth:`update` folds one new window
    column against the previously appended one, so a scheduler tick
    costs two set differences instead of a full re-walk of the store.
    Columns are sorted unique ``uint32`` arrays (every snapshot's
    shape), so the same ``np.setdiff1d(..., assume_unique=True)``
    counts the batch and streamed functions use apply verbatim — the
    property suite pins :meth:`transitions` equal to the batch
    reference after every prefix of appended intervals.
    """

    def __init__(self) -> None:
        self._previous: np.ndarray | None = None
        self._transitions: list[TransitionChurn] = []

    @property
    def num_snapshots(self) -> int:
        return len(self._transitions) + (0 if self._previous is None else 1)

    def update(self, ips: np.ndarray) -> None:
        """Fold one window column (sorted unique ``uint32``) in."""
        column = np.asarray(ips, dtype=np.uint32)
        previous = self._previous
        if previous is not None:
            self._transitions.append(
                TransitionChurn(
                    up_count=int(
                        np.setdiff1d(column, previous, assume_unique=True).size
                    ),
                    down_count=int(
                        np.setdiff1d(previous, column, assume_unique=True).size
                    ),
                    active_before=int(previous.size),
                    active_after=int(column.size),
                )
            )
        self._previous = column

    def transitions(self) -> list[TransitionChurn]:
        """Churn for every consecutive pair folded in so far."""
        return list(self._transitions)

    def summary(self, window_days: int) -> ChurnSummary:
        """The :class:`ChurnSummary` over all transitions so far."""
        return ChurnSummary(window_days, tuple(self._transitions))


def churn_plateau(summaries: dict[int, ChurnSummary], from_size: int = 7) -> float:
    """Median up-churn across window sizes >= *from_size*.

    The paper's striking observation is that this does not decay to
    zero — it sits near 5% for weekly and coarser windows.
    """
    values = [
        summary.up_median for size, summary in summaries.items() if size >= from_size
    ]
    if not values:
        raise DatasetError(f"no window sizes >= {from_size} in summary dict")
    return float(np.median(values))
