"""Internet-wide demographics of the active space (Sec. 7, Figs. 11/12).

Three per-/24 features — spatio-temporal utilization, traffic
contribution, and relative host count — are projected onto a unified
[0, 1] scale (STU is already normalised; traffic and host counts are
log-transformed and divided by the maximum log value), binned into
10×10×10 cells, and the number of blocks per cell examined.

Fig. 11 is the global 3-D matrix; Fig. 12 splits it per RIR and flattens
to (STU × traffic) with the mean host count as colour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import BlockMetrics
from repro.errors import DatasetError
from repro.registry.rir import RIR

NUM_BINS = 10


def normalize_log(values: np.ndarray) -> np.ndarray:
    """The paper's normalisation: log-transform, divide by the max log.

    Zero values map to 0; the maximum maps to 1.  Uses log(1 + x) so
    single-sample blocks still separate from empty ones.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise DatasetError("cannot normalise an empty feature")
    if (values < 0).any():
        raise DatasetError("features must be non-negative")
    logs = np.log1p(values)
    peak = logs.max()
    if peak == 0:
        return np.zeros_like(logs)
    return logs / peak


def bin_index(normalised: np.ndarray, num_bins: int = NUM_BINS) -> np.ndarray:
    """Map [0, 1] values to bin indexes 0..num_bins-1 (1.0 included)."""
    normalised = np.asarray(normalised)
    if normalised.size and (normalised.min() < 0 or normalised.max() > 1 + 1e-9):
        raise DatasetError("normalised features must lie in [0, 1]")
    return np.minimum((normalised * num_bins).astype(np.int64), num_bins - 1)


@dataclass(frozen=True)
class DemographicsMatrix:
    """The Fig. 11 feature matrix and its per-block assignments."""

    bases: np.ndarray
    stu_bin: np.ndarray
    traffic_bin: np.ndarray
    host_bin: np.ndarray
    counts: np.ndarray  # (10, 10, 10) block counts

    @property
    def num_blocks(self) -> int:
        return int(self.bases.size)

    def occupied_cells(self) -> int:
        return int((self.counts > 0).sum())

    def marginal(self, axis: int) -> np.ndarray:
        """Block counts summed onto one feature axis (0=stu, 1=traffic, 2=host)."""
        axes = tuple(a for a in range(3) if a != axis)
        return self.counts.sum(axis=axes)


def build_demographics(
    metrics: BlockMetrics,
    traffic_per_block: dict[int, int],
    hosts_per_block: dict[int, int],
    num_bins: int = NUM_BINS,
) -> DemographicsMatrix:
    """Combine the three features into the Fig. 11 matrix.

    Blocks missing from the traffic or host maps contribute zeros —
    an active block with no UA sample simply lands in the lowest host
    bin, mirroring the paper's sparse sampling.
    """
    traffic = np.array(
        [traffic_per_block.get(int(base), 0) for base in metrics.bases], dtype=np.float64
    )
    hosts = np.array(
        [hosts_per_block.get(int(base), 0) for base in metrics.bases], dtype=np.float64
    )
    stu_bins = bin_index(metrics.stu, num_bins)
    traffic_bins = bin_index(normalize_log(traffic), num_bins)
    host_bins = bin_index(normalize_log(hosts), num_bins)
    counts = np.zeros((num_bins, num_bins, num_bins), dtype=np.int64)
    np.add.at(counts, (stu_bins, traffic_bins, host_bins), 1)
    return DemographicsMatrix(
        bases=metrics.bases.copy(),
        stu_bin=stu_bins,
        traffic_bin=traffic_bins,
        host_bin=host_bins,
        counts=counts,
    )


@dataclass(frozen=True)
class RIRDemographics:
    """One Fig. 12 panel: (STU × traffic) with host-count colour."""

    rir: RIR
    counts: np.ndarray      # (10, 10) blocks per (stu, traffic) cell
    mean_host_bin: np.ndarray  # (10, 10) mean host bin per cell (nan if empty)

    @property
    def num_blocks(self) -> int:
        return int(self.counts.sum())

    def low_utilization_fraction(self, stu_bins: int = 3) -> float:
        """Fraction of the region's blocks in the lowest STU bins."""
        if self.num_blocks == 0:
            return 0.0
        return float(self.counts[:stu_bins, :].sum() / self.num_blocks)

    def gateway_corner_fraction(self, margin: int = 2) -> float:
        """Fraction in the top-right corner (high STU, high traffic)."""
        if self.num_blocks == 0:
            return 0.0
        return float(self.counts[-margin:, -margin:].sum() / self.num_blocks)


def split_by_rir(
    matrix: DemographicsMatrix, rir_per_block: dict[int, RIR]
) -> dict[RIR, RIRDemographics]:
    """Fig. 12: per-RIR flattened demographics.

    *rir_per_block* maps /24 bases to registries (from the delegation
    table); blocks with unknown registry are dropped.
    """
    num_bins = matrix.counts.shape[0]
    out: dict[RIR, RIRDemographics] = {}
    for rir in RIR:
        counts = np.zeros((num_bins, num_bins), dtype=np.int64)
        host_sum = np.zeros((num_bins, num_bins), dtype=np.float64)
        for row in range(matrix.num_blocks):
            if rir_per_block.get(int(matrix.bases[row])) is not rir:
                continue
            s, t, h = matrix.stu_bin[row], matrix.traffic_bin[row], matrix.host_bin[row]
            counts[s, t] += 1
            host_sum[s, t] += h
        with np.errstate(invalid="ignore"):
            mean_host = np.where(counts > 0, host_sum / np.maximum(counts, 1), np.nan)
        out[rir] = RIRDemographics(rir=rir, counts=counts, mean_host_bin=mean_host)
    return out
