"""Persistence for datasets and routing series.

Activity datasets are the expensive artifact of a collection run; the
analyses are cheap by comparison.  These helpers store a dataset (and
a routing series) on disk so a measurement pipeline can separate
collection from analysis, exactly as the paper's distributed log
aggregation precedes its offline study.

Formats:

- datasets: a single ``.npz`` with per-snapshot IP/hit columns plus a
  small header (start date, window length) — compressed by default,
  loads back bit-identically.  ``save_dataset(..., compress=False)``
  stores the arrays raw, which loads several times faster on large
  worlds; ``load_dataset`` autodetects either flavour (both are
  ``.npz`` zip bundles, only the member compression differs).  The
  ``.npz`` suffix is appended when missing, so ``save_dataset("data",
  ds)`` and ``load_dataset("data")`` round-trip; writes are atomic
  (temp file + ``os.replace``), so a crash mid-write cannot leave a
  truncated artifact behind;
- routing tables/series: a line-oriented text format
  (``prefix|origin_asn``) with day separators, mirroring the shape of
  RIB dump exports;
- sharded stores: a directory of raw-member ``.npz`` shards plus a
  JSON manifest (:mod:`repro.core.store`), for worlds too large to
  materialize — :func:`save_store` / :func:`open_store` here convert
  to and from the legacy single-file format bit-identically.

``load_dataset`` additionally has a zero-copy fast path: when every
member of the bundle is stored raw (``compress=False``), the snapshot
columns are memory-mapped read-only instead of being decompressed
through a full in-memory copy per array.
"""

from __future__ import annotations

import datetime
import io as _io
import os
import tempfile
import zipfile
import zlib
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import NDArray

from repro.core.dataset import ActivityDataset, Snapshot
from repro.errors import DatasetError, RoutingError
from repro.net.prefix import Prefix
from repro.obs import context as obs
from repro.routing.series import RoutingSeries
from repro.routing.table import RoutingTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.store import DatasetStore

_FORMAT_VERSION = 1


def _dataset_path(path: str | os.PathLike[str]) -> str:
    """Canonical on-disk path: append ``.npz`` when missing.

    ``np.savez_compressed`` appends the suffix on its own; save and
    load must apply the same rule or suffixless round-trips break.
    """
    text = os.fspath(path)
    if not text.endswith(".npz"):
        text += ".npz"
    return text


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry to stable storage (best effort).

    After ``os.replace`` the rename itself lives in the directory, so
    durability needs the directory fsynced too.  Platforms that cannot
    open directories (e.g. Windows) skip silently — the rename is still
    atomic there, just not durable against power loss.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_npz(
    path: str | os.PathLike[str],
    arrays: dict[str, NDArray[Any]],
    compress: bool = True,
) -> None:
    """Durably and atomically write *arrays* as an ``.npz`` at *path*.

    The data goes to a temporary file in the target's directory, is
    fsynced, renamed over *path*, and the directory entry is fsynced —
    so a crash (or power loss on a journaled filesystem) at any point
    leaves either the old file or the complete new one, never a
    truncated artifact.  Shared by :func:`save_dataset` and the
    collection engine's shard checkpoints.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    handle, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            if compress:
                np.savez_compressed(stream, **arrays)
            else:
                np.savez(stream, **arrays)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, target)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: str | os.PathLike[str], text: str, encoding: str = "utf-8"
) -> None:
    """Durably and atomically write *text* at *path*.

    The same temp-file + fsync + rename + directory-fsync discipline as
    :func:`atomic_write_npz`, for small text artifacts (run manifests,
    exported metrics) that must never exist half-written next to a
    complete dataset.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    handle, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(handle, "w", encoding=encoding) as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, target)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def save_dataset(
    path: str | os.PathLike[str], dataset: ActivityDataset, compress: bool = True
) -> None:
    """Write a dataset to ``path`` as ``.npz``.

    ``compress=False`` stores the arrays uncompressed — the bundle is
    larger on disk but loads ~5-10x faster for large worlds, the right
    trade-off for intermediate artifacts in a collect-then-analyze
    pipeline.  :func:`load_dataset` reads either flavour.

    The write is atomic and durable: data goes to a temporary file in
    the same directory which is fsynced and then renamed over *path*
    (followed by a directory fsync), so readers never see a truncated
    dataset even if the process — or the machine — dies mid-write.
    """
    target = _dataset_path(path)
    with obs.span("io/save_dataset"):
        arrays: dict[str, NDArray[Any]] = {
            "version": np.array([_FORMAT_VERSION]),
            "start": np.array([dataset.start.toordinal()]),
            "window_days": np.array([dataset.window_days]),
            "num_snapshots": np.array([len(dataset)]),
        }
        for index, snapshot in enumerate(dataset):
            arrays[f"ips_{index}"] = snapshot.ips
            arrays[f"hits_{index}"] = snapshot.hits
        atomic_write_npz(target, arrays, compress=compress)
        obs.add("datasets_saved_total")


#: Exceptions a corrupt or truncated ``.npz`` can leak from numpy's
#: loader: a damaged zip directory (``BadZipFile``), a truncated or
#: bit-flipped member (``zlib.error``, ``EOFError``, CRC ``BadZipFile``),
#: garbage headers (``ValueError``/``OverflowError``), or plain I/O
#: failure (``OSError``).  ``FileNotFoundError`` is handled separately.
_CORRUPT_NPZ_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    EOFError,
    ValueError,
    OverflowError,
    OSError,
)


def load_dataset(path: str | os.PathLike[str]) -> ActivityDataset:
    """Load a dataset written by :func:`save_dataset`.

    Applies the same ``.npz`` suffix rule as :func:`save_dataset` and
    raises :class:`~repro.errors.DatasetError` — never a bare
    ``FileNotFoundError``, ``zipfile.BadZipFile``, ``zlib.error`` or
    ``ValueError`` — when no dataset exists at *path* or the file is
    corrupt/truncated.  The error message names the ``.npz`` path
    actually read (which may differ from *path* by the appended
    suffix).
    """
    target = _dataset_path(path)
    with obs.span("io/load_dataset"):
        fast = _load_dataset_raw(target)
        if fast is not None:
            obs.add("datasets_loaded_total")
            return fast
        return _load_dataset(target)


#: Anything that should make the zero-copy fast path quietly step
#: aside: the legacy loader owns the canonical error taxonomy, so any
#: defect detected here is re-detected (and properly reported) there.
_FAST_PATH_BAILOUTS: tuple[type[BaseException], ...] = (
    DatasetError,
    KeyError,
    IndexError,
) + _CORRUPT_NPZ_ERRORS


def _load_dataset_raw(target: str) -> ActivityDataset | None:
    """Zero-copy fast path for raw-member (uncompressed) bundles.

    Maps each snapshot column read-only straight out of the ``.npz``
    instead of decompressing it through a full in-memory copy.  Returns
    ``None`` — never raises — whenever the bundle is compressed,
    missing, malformed, or otherwise something the legacy loader should
    handle, so the error taxonomy stays exactly the legacy path's.
    """
    from repro.core.store import RawNpzReader

    try:
        reader = RawNpzReader(target)
    except _CORRUPT_NPZ_ERRORS:
        return None
    mapped_bytes = 0
    try:
        if int(reader.array("version")[0]) != _FORMAT_VERSION:
            return None
        start = datetime.date.fromordinal(int(reader.array("start")[0]))
        window_days = int(reader.array("window_days")[0])
        count = int(reader.array("num_snapshots")[0])
        snapshots = []
        for index in range(count):
            for member in (f"ips_{index}", f"hits_{index}"):
                if reader.data_offset(member) < 0:
                    return None  # compressed member: not zero-copy eligible
            ips = reader.array(f"ips_{index}", mmap=True)
            hits = reader.array(f"hits_{index}", mmap=True)
            mapped_bytes += ips.nbytes + hits.nbytes
            window_start = start + datetime.timedelta(days=index * window_days)
            snapshots.append(Snapshot(window_start, window_days, ips, hits))
        dataset = ActivityDataset(snapshots)
    except _FAST_PATH_BAILOUTS:
        return None
    finally:
        reader.close()
    obs.add("datasets_loaded_zero_copy_total")
    obs.gauge("dataset_load_mapped_bytes", float(mapped_bytes))
    return dataset


def _load_dataset(target: str) -> ActivityDataset:
    try:
        bundle = np.load(target)
    except FileNotFoundError as exc:
        raise DatasetError(f"no dataset file at: {target}") from exc
    except _CORRUPT_NPZ_ERRORS as exc:
        raise DatasetError(
            f"corrupt or unreadable dataset file: {target} ({exc})"
        ) from exc
    with bundle:
        try:
            version = int(bundle["version"][0])
            start = datetime.date.fromordinal(int(bundle["start"][0]))
            window_days = int(bundle["window_days"][0])
            count = int(bundle["num_snapshots"][0])
            if version != _FORMAT_VERSION:
                raise DatasetError(f"unsupported dataset format version: {version}")
            snapshots = []
            for index in range(count):
                window_start = start + datetime.timedelta(days=index * window_days)
                snapshots.append(
                    Snapshot(
                        window_start,
                        window_days,
                        bundle[f"ips_{index}"],
                        bundle[f"hits_{index}"],
                    )
                )
        except KeyError as exc:
            raise DatasetError(f"not a dataset file: {target}") from exc
        except DatasetError:
            raise
        except _CORRUPT_NPZ_ERRORS as exc:
            # Truncation inside a member surfaces only when the member
            # is decompressed, i.e. mid-decode rather than at np.load.
            raise DatasetError(
                f"corrupt or truncated dataset file: {target} ({exc})"
            ) from exc
    obs.add("datasets_loaded_total")
    return ActivityDataset(snapshots)


def dump_routing_table(table: RoutingTable, stream: _io.TextIOBase) -> None:
    """Write one table as ``prefix|origin`` lines."""
    for prefix, origin in table:
        stream.write(f"{prefix}|{origin}\n")


def parse_routing_table(lines: Iterable[str]) -> RoutingTable:
    """Parse ``prefix|origin`` lines into a table."""
    table = RoutingTable()
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        prefix_text, _, origin_text = stripped.partition("|")
        if not origin_text:
            raise RoutingError(f"malformed route line: {line!r}")
        try:
            origin = int(origin_text)
        except ValueError as exc:
            raise RoutingError(f"bad origin in route line: {line!r}") from exc
        table.announce(Prefix.parse(prefix_text), origin)
    return table


def save_routing_series(path: str | os.PathLike[str], series: RoutingSeries) -> None:
    """Write a daily series as a text file with ``=== day N`` separators.

    Consecutive identical tables are stored once with a reference line
    (``=== day N same``), keeping year-long series compact.  The series
    is rendered in memory and written through the fsynced atomic path,
    so the ``.rib.txt`` artifact obeys the same crash-safety contract
    as the dataset it accompanies.
    """
    buffer = _io.StringIO()
    previous: RoutingTable | None = None
    for day in range(len(series)):
        table = series.table_at(day)
        if previous is not None and table is previous:
            buffer.write(f"=== day {day} same\n")
            continue
        buffer.write(f"=== day {day}\n")
        dump_routing_table(table, buffer)
        previous = table
    atomic_write_text(path, buffer.getvalue(), encoding="ascii")


def load_routing_series(path: str | os.PathLike[str]) -> RoutingSeries:
    """Load a series written by :func:`save_routing_series`."""
    tables: list[RoutingTable] = []
    current_lines: list[str] = []
    pending_same = False

    def flush() -> None:
        nonlocal current_lines
        if pending_same:
            if not tables:
                raise RoutingError("'same' marker before any table")
            for line in current_lines:
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    raise RoutingError(
                        f"route data under a 'same' day marker: {line!r}"
                    )
            tables.append(tables[-1])
        else:
            tables.append(parse_routing_table(current_lines))
        current_lines = []

    started = False
    with open(path, encoding="ascii") as stream:
        for line in stream:
            if line.startswith("=== day"):
                if started:
                    flush()
                started = True
                pending_same = line.strip().endswith("same")
                continue
            if not started:
                raise RoutingError(f"route data before day header: {line!r}")
            current_lines.append(line)
    if not started:
        raise RoutingError(f"empty routing series file: {path}")
    flush()
    return RoutingSeries(tables)


def open_store(path: str | os.PathLike[str]) -> "DatasetStore":
    """Open and validate the sharded dataset store at directory *path*.

    Eagerly checks the manifest and every shard's header (day range,
    block tiling, address ranges) but reads shard data lazily — see
    :class:`repro.core.store.DatasetStore`.  Live-store roots (appended
    interval by interval through ``StoreAppender``) resolve to their
    committed generation transparently.  Raises
    :class:`~repro.errors.DatasetError` on any structural defect.
    """
    from repro.core.store import DatasetStore, resolve_store_root

    with obs.span("io/open_store"):
        store = DatasetStore.open(resolve_store_root(path))
        obs.add("stores_opened_total")
        return store


def save_store(
    path: str | os.PathLike[str],
    dataset: ActivityDataset,
    shard_blocks: int = 256,
) -> "DatasetStore":
    """Write *dataset* as a sharded store under directory *path*.

    The dataset's active /24 blocks (sorted by base address) are tiled
    into shards of *shard_blocks* blocks each; every snapshot column is
    sliced by ``searchsorted`` on the shard's address range, so shard
    members are contiguous views of the legacy columns and the store's
    dataset SHA-256 equals :func:`repro.obs.manifest.dataset_digest` of
    *dataset* exactly.
    """
    from repro.core.store import StoreWriter

    with obs.span("io/save_store"):
        writer = StoreWriter(
            path,
            start=dataset.start,
            window_days=dataset.window_days,
            num_snapshots=len(dataset),
            shard_blocks=shard_blocks,
        )
        bases = dataset.index.block_bases
        snapshots = list(dataset)
        for chunk_start in range(0, int(bases.size), shard_blocks):
            chunk = bases[chunk_start : chunk_start + shard_blocks]
            lo = int(chunk[0])
            # Inclusive last address of the chunk's top /24: stays in
            # uint32 range, unlike the exclusive bound 2**32 would not.
            hi = int(chunk[-1]) + 255
            columns: list[tuple[NDArray[Any], NDArray[Any]]] = []
            for snapshot in snapshots:
                left = int(np.searchsorted(snapshot.ips, lo))
                right = int(np.searchsorted(snapshot.ips, hi, side="right"))
                columns.append(
                    (snapshot.ips[left:right], snapshot.hits[left:right])
                )
            writer.add_shard(chunk, columns)
        store = writer.finalize()
        obs.add("stores_saved_total")
        return store


def export_store(
    store: "DatasetStore", path: str | os.PathLike[str], compress: bool = True
) -> None:
    """Write *store* back out as a legacy single-``.npz`` dataset.

    The round trip is bit-identical: for any dataset ``x``,
    ``save_store(d, load_dataset(x))`` then
    ``export_store(open_store(d), y)`` makes ``y`` load back with the
    same columns — and the same dataset SHA-256 — as ``x``.
    """
    save_dataset(path, store.to_dataset(), compress=compress)
