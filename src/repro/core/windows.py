"""Window partitioning helpers (Sec. 4.1).

The paper studies churn at multiple time granularities by partitioning
its daily dataset into non-overlapping windows of a given size and
taking, within each window, the union of active addresses.  The
heavy lifting lives on :class:`~repro.core.dataset.ActivityDataset`
(:meth:`~repro.core.dataset.ActivityDataset.aggregate`); this module
adds the sweep-and-label conveniences the figures need.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.dataset import ActivityDataset
from repro.errors import DatasetError

#: The window sizes highlighted throughout the paper's churn analysis.
PAPER_WINDOW_SIZES: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 14, 21, 28)


def aggregate_to_window(dataset: ActivityDataset, window_days: int) -> ActivityDataset:
    """Partition a daily dataset into *window_days*-sized unions.

    A thin, validating wrapper over ``dataset.aggregate`` that insists
    on a daily input, since mixing granularities silently would skew
    every churn number downstream.
    """
    if dataset.window_days != 1:
        raise DatasetError(
            f"window aggregation expects a daily dataset, got {dataset.window_days}d"
        )
    if window_days < 1:
        raise DatasetError(f"bad window size: {window_days}")
    return dataset.aggregate(window_days)


def usable_window_sizes(
    dataset: ActivityDataset, candidates: Sequence[int] = PAPER_WINDOW_SIZES
) -> list[int]:
    """Window sizes leaving at least two windows (one transition).

    Fig. 4b needs a min/median/max per window size, which requires at
    least one window-to-window transition.
    """
    return [size for size in candidates if len(dataset) // size >= 2]
