"""Block activity metrics: filling degree and spatio-temporal utilization.

The two metrics of Sec. 5.1, computed per /24 block:

- **Filling degree (FD)** — the number of distinct addresses in the
  block that were active at least once in the observation window
  (1..256).  Separates static assignment (sparse, typically <64) from
  cycling dynamic pools (≈256).
- **Spatio-temporal utilization (STU)** — active address-days divided
  by the maximum possible (256 × days), in (0, 1].  Separates heavily
  used pools from barely used ones regardless of filling degree.

Both are computed for every active block at once via bincount over the
dataset's sparse columns, so a multi-million-address dataset is a few
vector passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.errors import DatasetError
from repro.net.ipv4 import block_of
from repro.obs import context as obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.store import DatasetStore

BLOCK_SIZE = 256


@dataclass(frozen=True)
class BlockMetrics:
    """Per-/24 filling degree and STU over one observation window."""

    bases: np.ndarray            # sorted /24 base addresses
    filling_degree: np.ndarray   # 1..256 per block
    stu: np.ndarray              # (0, 1] per block
    window_days: int             # total days in the observation window

    def __post_init__(self) -> None:
        if not (self.bases.size == self.filling_degree.size == self.stu.size):
            raise DatasetError("misaligned block metric arrays")

    @property
    def num_blocks(self) -> int:
        return int(self.bases.size)

    def index_of(self, base: int) -> int:
        """Row index of a block base; raises if the block is inactive."""
        pos = int(np.searchsorted(self.bases, base))
        if pos >= self.bases.size or int(self.bases[pos]) != base:
            raise DatasetError(f"block {base:#010x} not active in this window")
        return pos

    def fd_of(self, base: int) -> int:
        return int(self.filling_degree[self.index_of(base)])

    def stu_of(self, base: int) -> float:
        return float(self.stu[self.index_of(base)])

    def select(self, mask: np.ndarray) -> "BlockMetrics":
        """Metrics restricted to the blocks where *mask* is True."""
        return BlockMetrics(
            bases=self.bases[mask],
            filling_degree=self.filling_degree[mask],
            stu=self.stu[mask],
            window_days=self.window_days,
        )


def compute_block_metrics(dataset: ActivityDataset) -> BlockMetrics:
    """FD and STU for every /24 with any activity in *dataset*.

    STU counts one unit per (address, snapshot) pair; with a daily
    dataset that is exactly the paper's active address-days.  For
    coarser windows the denominator scales accordingly (an address
    active in a week contributes one unit out of the week's one).
    """
    with obs.span("analyze/block_metrics"):
        index = dataset.index
        if index.all_ips.size == 0:
            raise DatasetError("dataset has no active addresses")
        bases = index.block_bases

        fd = index.block_filling_degree
        activity = np.zeros(bases.size, dtype=np.int64)
        for position in range(len(dataset)):
            block_idx = index.snapshot_block_index(position)
            if block_idx.size == 0:
                continue
            activity += np.bincount(block_idx, minlength=bases.size)
        stu = activity / (BLOCK_SIZE * len(dataset))
        obs.add("analyze_blocks_total", int(bases.size))
        return BlockMetrics(
            bases=bases,
            filling_degree=fd.astype(np.int64),
            stu=stu,
            window_days=dataset.total_days,
        )


def compute_block_metrics_streamed(store: "DatasetStore") -> BlockMetrics:
    """FD and STU streamed shard-at-a-time over an out-of-core store.

    Produces exactly ``compute_block_metrics(store.to_dataset())`` —
    the in-memory function above is the executable reference spec —
    without ever materializing the dataset: per-/24 quantities
    decompose over the store's disjoint, 256-aligned shard ranges, so
    each shard contributes a complete, final slice of the result and
    peak memory is one shard's columns plus the per-block output.
    """
    with obs.span("analyze/block_metrics_streamed"):
        num_snapshots = store.num_snapshots
        bases_parts: list[np.ndarray] = []
        fd_parts: list[np.ndarray] = []
        activity_parts: list[np.ndarray] = []
        for shard in store.shards:
            # try/finally, not happy-path close: an exception mid-fold
            # must not leak the shard's open RawNpzReader handle.
            try:
                columns = [
                    shard.columns(position)[0] for position in range(num_snapshots)
                ]
                nonempty = [ips for ips in columns if ips.size]
                if not nonempty:
                    continue
                if len(nonempty) == 1:
                    union = nonempty[0]
                else:
                    union = np.unique(np.concatenate(nonempty))  # bounded: one shard
                shard_bases, ip_block_index = np.unique(
                    union & np.uint32(0xFFFFFF00), return_inverse=True
                )
                fd = np.bincount(ip_block_index, minlength=shard_bases.size)
                activity = np.zeros(shard_bases.size, dtype=np.int64)
                for ips in columns:
                    if ips.size == 0:
                        continue
                    block_idx = np.searchsorted(
                        shard_bases, ips & np.uint32(0xFFFFFF00)
                    )
                    activity += np.bincount(block_idx, minlength=shard_bases.size)
                bases_parts.append(shard_bases)
                fd_parts.append(fd.astype(np.int64))
                activity_parts.append(activity)
            finally:
                shard.close()
        if not bases_parts:
            raise DatasetError("store has no active addresses")
        bases = np.concatenate(bases_parts)  # O(active /24s), not O(addresses)
        fd_all = np.concatenate(fd_parts)  # O(active /24s), not O(addresses)
        activity_all = np.concatenate(activity_parts)  # O(active /24s)
        stu = activity_all / (BLOCK_SIZE * num_snapshots)
        obs.add("analyze_blocks_total", int(bases.size))
        return BlockMetrics(
            bases=bases,
            filling_degree=fd_all,
            stu=stu,
            window_days=store.total_days,
        )


class IncrementalBlockMetrics:
    """FD/STU maintained one appended snapshot at a time.

    The live-observatory service commits one interval per scheduler
    tick; recomputing :func:`compute_block_metrics_streamed` over the
    whole store every tick would make each tick cost O(history).  This
    accumulator folds a single new window column into running state —
    the address union (FD) and per-/24 activity totals (STU) — and
    :meth:`result` derives exactly what the batch functions compute
    over the same snapshots:

    - the union is maintained with ``np.union1d`` over sorted unique
      columns, so FD counts each address once regardless of arrival
      order;
    - per-/24 activity adds this column's integer address counts into
      ``int64`` totals — identical integers to the batch bincounts, so
      the one ``activity / (256 * n)`` division at :meth:`result` time
      produces bit-identical ``float64`` STU values.

    The batch functions stay the executable reference spec; the
    property suite pins ``result()`` equal to them after every prefix
    of appended intervals.
    """

    def __init__(self, window_days: int) -> None:
        if window_days < 1:
            raise DatasetError(f"bad window length: {window_days}")
        self._window_days = window_days
        self._union = np.empty(0, dtype=np.uint32)
        self._bases = np.empty(0, dtype=np.uint32)
        self._activity = np.empty(0, dtype=np.int64)
        self._num_snapshots = 0

    @property
    def num_snapshots(self) -> int:
        return self._num_snapshots

    def update(self, ips: np.ndarray) -> None:
        """Fold one window column (sorted unique ``uint32``) in."""
        column = np.asarray(ips, dtype=np.uint32)
        self._num_snapshots += 1
        if column.size == 0:
            return
        self._union = np.union1d(self._union, column)
        new_bases, counts = np.unique(
            column & np.uint32(0xFFFFFF00), return_counts=True
        )
        merged = np.union1d(self._bases, new_bases)
        activity = np.zeros(merged.size, dtype=np.int64)
        activity[np.searchsorted(merged, self._bases)] = self._activity
        activity[np.searchsorted(merged, new_bases)] += counts
        self._bases = merged
        self._activity = activity

    def result(self) -> BlockMetrics:
        """The metrics over every snapshot folded in so far."""
        if self._union.size == 0:
            raise DatasetError("dataset has no active addresses")
        bases, ip_block_index = np.unique(
            self._union & np.uint32(0xFFFFFF00), return_inverse=True
        )
        fd = np.bincount(ip_block_index, minlength=bases.size)
        stu = self._activity / (BLOCK_SIZE * self._num_snapshots)
        return BlockMetrics(
            bases=bases,
            filling_degree=fd.astype(np.int64),
            stu=stu,
            window_days=self._num_snapshots * self._window_days,
        )


def activity_matrix(dataset: ActivityDataset, block_base: int) -> np.ndarray:
    """The Fig. 6/7 spatio-temporal view: a 256 × windows boolean matrix.

    Row *r* is address ``block_base + r``; column *c* is snapshot *c*;
    a True cell means the address was active in that window.
    """
    base = block_of(block_base, 24)
    matrix = np.zeros((BLOCK_SIZE, len(dataset)), dtype=bool)
    for column, snapshot in enumerate(dataset):
        lo = int(np.searchsorted(snapshot.ips, base))
        hi = int(np.searchsorted(snapshot.ips, base + BLOCK_SIZE))
        offsets = snapshot.ips[lo:hi].astype(np.int64) - base
        matrix[offsets, column] = True
    return matrix


def block_metrics_from_matrix(matrix: np.ndarray) -> tuple[int, float]:
    """``(FD, STU)`` of one activity matrix — the Fig. 6 annotations."""
    if matrix.shape[0] != BLOCK_SIZE or matrix.ndim != 2 or matrix.shape[1] == 0:
        raise DatasetError(f"expected a 256 x windows matrix, got {matrix.shape}")
    fd = int(matrix.any(axis=1).sum())
    stu = float(matrix.sum() / matrix.size)
    return fd, stu


class MonthlyStu(tuple):
    """``(bases, stu_matrix)`` pair that also reports truncation.

    Unpacks exactly like the 2-tuple :func:`monthly_stu` always
    returned, and additionally carries :attr:`dropped_days` — the
    trailing days that did not fill a whole month and were therefore
    excluded from every column.
    """

    def __new__(
        cls, bases: np.ndarray, stu_matrix: np.ndarray, dropped_days: int
    ) -> "MonthlyStu":
        self = super().__new__(cls, (bases, stu_matrix))
        self.dropped_days = int(dropped_days)
        return self

    @property
    def bases(self) -> np.ndarray:
        return self[0]

    @property
    def stu_matrix(self) -> np.ndarray:
        return self[1]


def monthly_stu(dataset: ActivityDataset, month_days: int = 28) -> MonthlyStu:
    """Per-block STU for each month-sized chunk of a daily dataset.

    Returns a :class:`MonthlyStu` — unpackable as ``(bases,
    stu_matrix)`` — with one row per active block and one column per
    month.  Blocks are the union of blocks active in any month; months
    without activity contribute STU 0.  This is the input to the
    change detection of Sec. 5.2 (Fig. 8a).

    Truncation rule: months are non-overlapping ``month_days``-day
    chunks from the start of the dataset; the trailing
    ``len(dataset) % month_days`` days that do not fill a month are
    excluded.  The excluded count is reported as
    ``result.dropped_days`` rather than dropped silently.
    """
    if dataset.window_days != 1:
        raise DatasetError("monthly STU expects a daily dataset")
    num_months = len(dataset) // month_days
    if num_months < 1:
        raise DatasetError(
            f"dataset of {len(dataset)} days has no full {month_days}-day month"
        )
    with obs.span("analyze/monthly_stu"):
        index = dataset.index
        all_bases = index.block_bases
        stu_matrix = np.zeros((all_bases.size, num_months))
        for month in range(num_months):
            for day in range(month * month_days, (month + 1) * month_days):
                idx = index.snapshot_block_index(day)
                if idx.size == 0:
                    continue
                stu_matrix[:, month] += np.bincount(idx, minlength=all_bases.size)
        stu_matrix /= BLOCK_SIZE * month_days
        return MonthlyStu(
            all_bases, stu_matrix, len(dataset) - num_months * month_days
        )
