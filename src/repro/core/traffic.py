"""Activity vs. traffic volume (Sec. 6.1–6.2, Fig. 9).

Three analyses:

- :func:`hits_by_days_active` — Fig. 9a: bin addresses by the number
  of days they were active; per bin, the distribution (median and
  percentile fan) of daily hit counts.  Always-on addresses issue
  orders of magnitude more requests — they are gateways, proxies, and
  bots.
- :func:`cumulative_by_days_active` — Fig. 9b: cumulative fraction of
  addresses and of total traffic per days-active bin.  The <10% of
  addresses active every single day carry >40% of all traffic.
- :func:`top_share_series` — Fig. 9c: the weekly traffic share of the
  top-10% addresses, which creeps upward across 2015 (consolidation).

Per-bin hit distributions are held as logarithmic histograms, so the
analysis streams over snapshots without materialising the full
(address × day) hit matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.errors import DatasetError

#: Number of log2 bins for daily-hit histograms (covers 1 .. 2^48).
_LOG_BINS = 48


def _log_bin(hits: np.ndarray) -> np.ndarray:
    """log2 bin index per hit count (hits >= 1)."""
    _, exponents = np.frexp(hits.astype(np.float64))
    return np.minimum(exponents.astype(np.int64) - 1, _LOG_BINS - 1)


@dataclass(frozen=True)
class HitsByActivity:
    """Per days-active bin, a log-histogram of daily hit counts."""

    num_windows: int
    histograms: np.ndarray       # (num_windows, _LOG_BINS); row d-1 = active d windows
    ip_counts: np.ndarray        # addresses per bin
    hit_totals: np.ndarray       # total hits per bin (exact uint64)

    def percentile(self, days_active: int, q: float) -> float:
        """Approximate percentile of daily hits within one bin.

        Resolves within the matched log2 bin by geometric
        interpolation; adequate for the log-scaled Fig. 9a fan.
        """
        if not 1 <= days_active <= self.num_windows:
            raise DatasetError(f"days_active out of range: {days_active}")
        if not 0.0 <= q <= 100.0:
            raise DatasetError(f"percentile out of range: {q}")
        histogram = self.histograms[days_active - 1]
        total = histogram.sum()
        if total == 0:
            return float("nan")
        target = q / 100.0 * total
        cumulative = np.cumsum(histogram)
        bin_index = int(np.searchsorted(cumulative, target, side="left"))
        bin_index = min(bin_index, _LOG_BINS - 1)
        before = cumulative[bin_index - 1] if bin_index else 0
        inside = histogram[bin_index]
        fraction = (target - before) / inside if inside else 0.0
        return float(2.0 ** (bin_index + fraction))

    def median(self, days_active: int) -> float:
        return self.percentile(days_active, 50.0)

    def medians(self) -> np.ndarray:
        """Median daily hits for every days-active bin (Fig. 9a line)."""
        return np.array(
            [self.percentile(d, 50.0) for d in range(1, self.num_windows + 1)]
        )

    def percentile_fan(
        self, qs: tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)
    ) -> dict[float, np.ndarray]:
        """The Fig. 9a percentile bands across all bins."""
        return {
            q: np.array(
                [self.percentile(d, q) for d in range(1, self.num_windows + 1)]
            )
            for q in qs
        }


def hits_by_days_active(dataset: ActivityDataset) -> HitsByActivity:
    """Fig. 9a: distributions of per-window hits, binned by activity span.

    Only windows in which an address was active contribute (the paper
    conditions on days with at least one hit by construction: inactive
    days have no log line).
    """
    index = dataset.index
    ips, windows_active, total_hits = index.per_ip_stats()
    if ips.size == 0:
        raise DatasetError("dataset has no active addresses")
    # Flattened bincount beats a 2-D np.add.at scatter by an order of
    # magnitude; the (num_windows * _LOG_BINS) count vector is tiny.
    flat_counts = np.zeros(len(dataset) * _LOG_BINS, dtype=np.int64)
    for position, snapshot in enumerate(dataset):
        bins_for_ip = windows_active[index.snapshot_positions(position)] - 1
        flat = bins_for_ip.astype(np.int64) * _LOG_BINS + _log_bin(snapshot.hits)
        flat_counts += np.bincount(flat, minlength=flat_counts.size)
    histograms = flat_counts.reshape(len(dataset), _LOG_BINS)
    ip_counts = np.bincount(windows_active - 1, minlength=len(dataset))
    # Accumulate hit totals in integer arithmetic: bincount's float64
    # weights silently round counts above 2**53.
    hit_totals = np.zeros(len(dataset), dtype=np.uint64)
    np.add.at(hit_totals, windows_active - 1, total_hits)
    return HitsByActivity(
        num_windows=len(dataset),
        histograms=histograms,
        ip_counts=ip_counts.astype(np.int64),
        hit_totals=hit_totals,
    )


@dataclass(frozen=True)
class CumulativeActivityTraffic:
    """Fig. 9b: cumulative address and traffic fractions per bin."""

    ip_fractions: np.ndarray       # cumulative, ending at 1.0
    traffic_fractions: np.ndarray  # cumulative, ending at 1.0

    @property
    def always_on_ip_share(self) -> float:
        """Fraction of addresses active in every window."""
        return float(1.0 - self.ip_fractions[-2]) if self.ip_fractions.size > 1 else 1.0

    @property
    def always_on_traffic_share(self) -> float:
        """Traffic share of the always-on addresses (paper: >40%)."""
        return (
            float(1.0 - self.traffic_fractions[-2])
            if self.traffic_fractions.size > 1
            else 1.0
        )


def cumulative_by_days_active(stats: HitsByActivity) -> CumulativeActivityTraffic:
    """Fig. 9b from the Fig. 9a binning.

    The cumulative hit sums stay in integer arithmetic; only the final
    fractions are floating point.
    """
    total_ips = stats.ip_counts.sum()
    total_hits = stats.hit_totals.sum()
    if total_ips == 0 or total_hits == 0:
        raise DatasetError("no addresses or no traffic to accumulate")
    return CumulativeActivityTraffic(
        ip_fractions=np.cumsum(stats.ip_counts) / total_ips,
        traffic_fractions=np.cumsum(stats.hit_totals) / total_hits,
    )


def top_share_series(dataset: ActivityDataset, top_fraction: float = 0.10) -> np.ndarray:
    """Fig. 9c: per window, the traffic share of the top heavy hitters.

    The paper computes, weekly across 2015, the share of total traffic
    received by the 10% of addresses with the greatest traffic.
    """
    if not 0.0 < top_fraction < 1.0:
        raise DatasetError(f"top fraction must be in (0, 1): {top_fraction}")
    shares = np.empty(len(dataset))
    for index, snapshot in enumerate(dataset):
        if snapshot.num_active == 0:
            shares[index] = 0.0
            continue
        top = max(1, int(snapshot.num_active * top_fraction))
        # argpartition: O(n) selection of the heaviest addresses.
        heavy = np.partition(snapshot.hits, snapshot.num_active - top)[-top:]
        shares[index] = heavy.sum() / snapshot.total_hits
    return shares


def consolidation_trend(shares: np.ndarray) -> float:
    """Least-squares slope of the Fig. 9c series, in share per window."""
    if shares.size < 2:
        raise DatasetError("need at least two windows for a trend")
    return float(np.polyfit(np.arange(shares.size), shares, 1)[0])
