"""Correlating address churn with BGP changes (Fig. 5c, Table 2).

The central negative result of Sec. 4.2: although long-horizon up/down
events are bulkier and more often coincide with routing changes than
daily flickers do, **less than ~2.5% of monthly up/down events are
visible in BGP at all** — the vast majority of address volatility is
hidden from the global routing table.

These functions take an activity dataset and a
:class:`~repro.routing.series.RoutingSeries` whose day axis matches the
dataset's, and measure the coincidence rates per window size, plus the
Table 2 change-kind breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.errors import DatasetError
from repro.routing.events import ChangeKind
from repro.routing.series import RoutingSeries


@dataclass(frozen=True)
class BGPCorrelation:
    """Coincidence of up/down/steady addresses with BGP changes."""

    window_days: int
    up_fraction: float
    down_fraction: float
    steady_fraction: float
    up_events: int
    down_events: int
    steady_addresses: int


def bgp_event_correlation(
    dataset: ActivityDataset,
    routing: RoutingSeries,
    window_days: int,
) -> BGPCorrelation:
    """Fig. 5c for one window size.

    For each consecutive window pair, an up/down/steady address counts
    as "coinciding with BGP" when a route covering it changed between
    the first day of the earlier window and the last day of the later
    one (announce, withdraw, or origin change of any covering prefix).
    """
    if dataset.window_days != 1:
        raise DatasetError("BGP correlation expects a daily dataset")
    if len(routing) < dataset.total_days:
        raise DatasetError(
            f"routing series covers {len(routing)} days, dataset needs {dataset.total_days}"
        )
    windowed = dataset.aggregate(window_days)
    if len(windowed) < 2:
        raise DatasetError(f"window size {window_days} leaves fewer than two windows")

    up_hits = up_total = 0
    down_hits = down_total = 0
    steady_hits = steady_total = 0
    for index in range(len(windowed) - 1):
        before = windowed[index]
        after = windowed[index + 1]
        first_day = index * window_days
        last_day = (index + 2) * window_days - 1
        ups = after.up_from(before)
        downs = before.down_to(after)
        steady = np.intersect1d(before.ips, after.ips, assume_unique=True)
        for ips, bucket in ((ups, "up"), (downs, "down"), (steady, "steady")):
            if ips.size == 0:
                continue
            changed = routing.change_mask(ips, first_day, last_day)
            hits = int(changed.sum())
            if bucket == "up":
                up_hits += hits
                up_total += ips.size
            elif bucket == "down":
                down_hits += hits
                down_total += ips.size
            else:
                steady_hits += hits
                steady_total += ips.size
    return BGPCorrelation(
        window_days=window_days,
        up_fraction=up_hits / up_total if up_total else 0.0,
        down_fraction=down_hits / down_total if down_total else 0.0,
        steady_fraction=steady_hits / steady_total if steady_total else 0.0,
        up_events=up_total,
        down_events=down_total,
        steady_addresses=steady_total,
    )


@dataclass(frozen=True)
class ChangeKindBreakdown:
    """Table 2 rows: how events split across BGP change kinds."""

    no_change: float
    origin_change: float
    announce_withdraw: float
    total: int

    def __post_init__(self) -> None:
        total = self.no_change + self.origin_change + self.announce_withdraw
        if self.total and abs(total - 1.0) > 1e-6:
            raise DatasetError(f"breakdown fractions sum to {total}, not 1")


def change_kind_breakdown(
    ips: np.ndarray,
    routing: RoutingSeries,
    first_day: int,
    last_day: int,
) -> ChangeKindBreakdown:
    """Split a set of event addresses by the covering BGP change kind.

    Used for the Table 2 BGP rows: among appearing (or disappearing)
    addresses, what fraction saw no routing change at all, an origin
    change, or an announce/withdraw of a covering prefix.
    """
    ips = np.asarray(ips, dtype=np.uint32)
    if ips.size == 0:
        return ChangeKindBreakdown(0.0, 0.0, 0.0, 0)
    kinds = routing.change_kind_of_many(ips, first_day, last_day)
    origin = sum(1 for kind in kinds if kind is ChangeKind.ORIGIN_CHANGE)
    announce_withdraw = sum(
        1 for kind in kinds if kind in (ChangeKind.ANNOUNCE, ChangeKind.WITHDRAW)
    )
    none = len(kinds) - origin - announce_withdraw
    total = len(kinds)
    return ChangeKindBreakdown(
        no_change=none / total,
        origin_change=origin / total,
        announce_withdraw=announce_withdraw / total,
        total=total,
    )
