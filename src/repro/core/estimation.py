"""Capture–recapture estimation of the active address population.

The paper's related work (Zander et al. [37]) estimates the total
active IPv4 population — including addresses invisible to every single
vantage point — with statistical capture–recapture models; the paper's
own census of 1.2B agrees with that estimate, "boding well for future
use of such statistical models" (Sec. 8).  This module provides the
two standard estimators for that methodology:

- the Chapman-corrected Lincoln–Petersen estimator for two samples,
- the Schnabel estimator for k repeated samples (e.g. the 8 ICMP
  scans).

Both assume a closed population and independent captures; the tests
and the estimation example explore how heterogeneous capture
probabilities (firewalled hosts!) bias them low — the reason passive
vantage points matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.errors import DatasetError
from repro.net.sets import IPSet


@dataclass(frozen=True)
class PopulationEstimate:
    """Point estimate with a normal-approximation confidence interval."""

    estimate: float
    std_error: float

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        return (self.estimate - z * self.std_error, self.estimate + z * self.std_error)


def chapman_estimate(n1: int, n2: int, overlap: int) -> PopulationEstimate:
    """Chapman's nearly unbiased two-sample estimator.

    ``n1``/``n2`` are the two sample sizes, *overlap* the recaptures.
    """
    if n1 < 0 or n2 < 0 or overlap < 0:
        raise DatasetError("sample sizes must be non-negative")
    if overlap > min(n1, n2):
        raise DatasetError("overlap cannot exceed either sample size")
    estimate = (n1 + 1) * (n2 + 1) / (overlap + 1) - 1
    variance = (
        (n1 + 1)
        * (n2 + 1)
        * (n1 - overlap)
        * (n2 - overlap)
        / ((overlap + 1) ** 2 * (overlap + 2))
    )
    return PopulationEstimate(estimate=float(estimate), std_error=math.sqrt(variance))


def chapman_from_sets(sample_a: IPSet, sample_b: IPSet) -> PopulationEstimate:
    """Chapman estimate straight from two observed address sets."""
    overlap = len(sample_a & sample_b)
    return chapman_estimate(len(sample_a), len(sample_b), overlap)


def schnabel_estimate(samples: list[IPSet]) -> PopulationEstimate:
    """Schnabel's k-sample estimator.

    For each sample *t*, ``C_t`` is its size and ``R_t`` the number of
    its members already seen in earlier samples; the estimate is
    ``sum(C_t * M_t) / sum(R_t)`` with ``M_t`` the marked population
    before sample *t*.
    """
    if len(samples) < 2:
        raise DatasetError("Schnabel needs at least two samples")
    marked = IPSet()
    numerator = 0.0
    recaptures = 0
    for sample in samples:
        m_t = len(marked)
        c_t = len(sample)
        r_t = len(sample & marked)
        numerator += c_t * m_t
        recaptures += r_t
        marked = marked | sample
    if recaptures == 0:
        raise DatasetError("no recaptures across samples; population unbounded")
    estimate = numerator / recaptures
    # Poisson-approximate standard error on the recapture count.
    std_error = estimate / math.sqrt(recaptures)
    return PopulationEstimate(estimate=float(estimate), std_error=float(std_error))


def heterogeneity_bias(
    true_population: int,
    estimate: PopulationEstimate,
) -> float:
    """Relative bias of an estimate against a known ground truth.

    Negative values mean underestimation — the expected direction when
    capture probabilities are heterogeneous (hosts that answer no probe
    are never 'captured' by active samples).
    """
    if true_population <= 0:
        raise DatasetError("true population must be positive")
    return (estimate.estimate - true_population) / true_population
