"""The paper's analyses: the core library.

Each module maps to a section of the paper; see DESIGN.md for the full
experiment index.  Everything here consumes only observable data —
activity datasets, routing series, scan sets, PTR tags, UA samples —
never the simulator's ground truth.
"""

from repro.core import (
    addressing,
    asview,
    bgpcorr,
    change,
    churn,
    demographics,
    detect,
    estimation,
    eventsize,
    growth,
    hosts,
    index,
    io,
    longterm,
    markets,
    metrics,
    potential,
    seasonal,
    traffic,
    visibility,
    windows,
)
from repro.core.dataset import ActivityDataset, Snapshot, dataset_from_daily_logs
from repro.core.index import DatasetIndex

__all__ = [
    "ActivityDataset",
    "DatasetIndex",
    "Snapshot",
    "addressing",
    "asview",
    "bgpcorr",
    "change",
    "churn",
    "dataset_from_daily_logs",
    "demographics",
    "detect",
    "estimation",
    "eventsize",
    "growth",
    "hosts",
    "index",
    "io",
    "longterm",
    "markets",
    "metrics",
    "potential",
    "seasonal",
    "traffic",
    "visibility",
    "windows",
]
