"""Out-of-core dataset store: sharded raw ``.npz`` layout + manifest.

The legacy persistence format (:mod:`repro.core.io`) is one ``.npz``
holding every snapshot column — loading it materializes the full
address matrix, which caps analysis at whatever fits in RAM.  The paper
analyzed 1.2B active addresses over a year; this module is the layout
that lets the reproduction head there: a **store** is a directory of
shard files, each a raw-member (uncompressed) ``.npz`` covering a
contiguous range of the dataset's active /24 blocks, plus a JSON
manifest binding them together.

Layout::

    <root>/
        store.manifest.json          # schema, day range, shard table,
                                     # per-shard SHA-256, dataset SHA-256
        shard_000000_000256.npz      # blocks [0, 256) of the sorted
        shard_000256_000512.npz      # active-/24 table, all snapshots

Shard files reuse the checkpoint naming convention from
:mod:`repro.sim.checkpoint` (``shard_<start>_<stop>.npz`` keyed by
global block range).  Each shard holds, per snapshot, the ``(ips,
hits)`` columns restricted to its address range, sorted — plus the same
header members as the legacy format, so every shard is independently a
valid (partial) dataset file.

Shards are keyed by **sorted /24 base address**, not by world-gen block
index: the population allocator interleaves countries, so block index
order is not address order, and only address-keyed ranges make
``searchsorted`` slicing of sorted snapshot columns valid.  Shard
boundaries are 256-aligned — a /24 is never split across shards — so
per-/24 quantities (filling degree, STU, block activity) decompose
exactly over shards, and concatenating shard columns in shard order
reproduces the legacy arrays bit-identically.

Memory model: analyses stream shard by shard.  Shard *data* is read
with bounded buffered copies (one member at a time) rather than
``mmap`` — mapped pages fault into the process RSS and would defeat a
constant-memory ceiling — while :meth:`DatasetStore.to_dataset` and the
``load_dataset`` fast path use true zero-copy ``np.memmap`` views where
the caller wants the whole matrix anyway.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import math
import os
import re
import shutil
import zipfile
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import IO, Any

import numpy as np
from numpy.typing import NDArray

from repro.core.dataset import ActivityDataset, Snapshot
from repro.core.io import _CORRUPT_NPZ_ERRORS, atomic_write_npz, atomic_write_text
from repro.errors import DatasetError
from repro.obs import context as obs

#: Bump when the shard payload or manifest schema changes.
STORE_FORMAT_VERSION = 1

#: Manifest file name inside a store directory.
STORE_MANIFEST_NAME = "store.manifest.json"

#: Pointer file name inside a *live* store directory (appendable store).
LIVE_POINTER_NAME = "live.json"

#: Bump when the live-pointer schema changes.
LIVE_POINTER_VERSION = 1

#: Generation directory names inside a live store root.
_GENERATION_PATTERN = re.compile(r"^gen_(\d{6})$")

#: Addresses per /24 block.
_BLOCK_SPAN = 256

#: Dataset-format version shared with the legacy single-file layout —
#: each shard is independently a valid (partial) legacy dataset file.
_DATASET_VERSION = 1

#: Size of the fixed portion of a zip local file header (bytes).
_ZIP_LOCAL_HEADER_SIZE = 30

_ZIP_LOCAL_MAGIC = b"PK\x03\x04"


def shard_file_name(block_start: int, block_stop: int) -> str:
    """Shard file name for a global block range — checkpoint convention."""
    return f"shard_{block_start:06d}_{block_stop:06d}.npz"


def store_manifest_path(root: str | os.PathLike[str]) -> str:
    """Path of the manifest inside store directory *root*."""
    return os.path.join(os.fspath(root), STORE_MANIFEST_NAME)


def generation_dir_name(generation: int) -> str:
    """Directory name of one live-store generation (1-based)."""
    return f"gen_{generation:06d}"


def live_pointer_path(root: str | os.PathLike[str]) -> str:
    """Path of the generation pointer inside live store *root*."""
    return os.path.join(os.fspath(root), LIVE_POINTER_NAME)


def read_live_pointer(root: str | os.PathLike[str]) -> int | None:
    """The committed generation number of live store *root*.

    Returns ``None`` when no pointer file exists (the directory is not
    a live store, or no generation has ever been committed); raises
    :class:`~repro.errors.DatasetError` on a malformed pointer.
    """
    target = live_pointer_path(root)
    try:
        with open(target, encoding="utf-8") as stream:
            payload = json.load(stream)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, OSError) as exc:
        raise DatasetError(
            f"corrupt or unreadable live-store pointer: {target} ({exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise DatasetError(f"malformed live-store pointer: {target}")
    try:
        schema = int(payload["schema"])
        generation = int(payload["generation"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(
            f"malformed live-store pointer: {target} ({exc})"
        ) from exc
    if schema != LIVE_POINTER_VERSION:
        raise DatasetError(
            f"unsupported live-store pointer schema in {target}: {schema}"
        )
    if generation < 1:
        raise DatasetError(
            f"malformed live-store pointer: {target} (generation {generation})"
        )
    return generation


def resolve_store_root(path: str | os.PathLike[str]) -> str:
    """The directory whose manifest describes *path*'s dataset.

    A plain store directory resolves to itself.  A **live** store —
    one whose snapshots are appended interval by interval through
    :class:`StoreAppender` — keeps each committed state as a complete
    store under a generation directory and points at the current one
    with ``live.json``; such a root resolves to its committed
    generation directory, so every store consumer (``open_store``,
    ``repro analyze``) reads a live store transparently.
    """
    root = os.fspath(path)
    if os.path.isfile(store_manifest_path(root)):
        return root
    generation = read_live_pointer(root)
    if generation is not None:
        return os.path.join(root, generation_dir_name(generation))
    return root


def is_store(path: str | os.PathLike[str]) -> bool:
    """True when *path* is (or resolves to) a store-manifest directory."""
    target = os.fspath(path)
    if not os.path.isdir(target):
        return False
    try:
        resolved = resolve_store_root(target)
    except DatasetError:
        return False
    return os.path.isfile(store_manifest_path(resolved))


class RawNpzReader:
    """Random access to ``.npz`` members without whole-bundle loads.

    ``np.load`` on an ``.npz`` decompresses each member through a full
    in-memory copy even when the member was stored raw.  This reader
    parses the zip central directory once, locates each member's array
    data by its local-header offset, and then serves reads three ways:

    - :meth:`header` — shape and dtype from the ``.npy`` header alone
      (no data read), for size accounting and digests;
    - :meth:`array` — a bounded buffered copy (``np.fromfile`` at the
      data offset), the streaming-analysis path that keeps RSS flat;
    - :meth:`array` with ``mmap=True`` — a read-only ``np.memmap``
      view, true zero-copy for whole-matrix consumers.

    Members that are compressed (or Fortran-ordered / object-dtype)
    fall back to ``np.lib.format.read_array`` through the zip stream;
    :meth:`data_offset` returns ``-1`` for them so callers needing the
    zero-copy guarantee can detect and bail.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self._path = os.fspath(path)
        self._zip = zipfile.ZipFile(self._path)
        self._file: IO[bytes] = open(self._path, "rb")
        # member name -> (shape, dtype, data offset; -1 = not raw)
        self._headers: dict[str, tuple[tuple[int, ...], np.dtype[Any], int]] = {}

    def close(self) -> None:
        self._zip.close()
        self._file.close()

    def __enter__(self) -> "RawNpzReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def path(self) -> str:
        return self._path

    def keys(self) -> list[str]:
        """Member names (without the ``.npy`` suffix), archive order."""
        return [
            name[: -len(".npy")]
            for name in self._zip.namelist()
            if name.endswith(".npy")
        ]

    def _locate(self, name: str) -> tuple[tuple[int, ...], np.dtype[Any], int]:
        cached = self._headers.get(name)
        if cached is not None:
            return cached
        try:
            info = self._zip.getinfo(name + ".npy")
        except KeyError as exc:
            raise DatasetError(
                f"not a dataset file: {self._path} (missing member {name!r})"
            ) from exc
        if info.compress_type == zipfile.ZIP_STORED:
            self._file.seek(info.header_offset)
            local = self._file.read(_ZIP_LOCAL_HEADER_SIZE)
            if (
                len(local) < _ZIP_LOCAL_HEADER_SIZE
                or local[:4] != _ZIP_LOCAL_MAGIC
            ):
                raise DatasetError(
                    f"corrupt or unreadable dataset file: {self._path} "
                    f"(bad local header for member {name!r})"
                )
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            payload = (
                info.header_offset + _ZIP_LOCAL_HEADER_SIZE + name_len + extra_len
            )
            self._file.seek(payload)
            shape, fortran, dtype = self._read_npy_header(self._file)
            offset = -1 if fortran or dtype.hasobject else self._file.tell()
        else:
            with self._zip.open(info) as stream:
                shape, _fortran, dtype = self._read_npy_header(stream)
            offset = -1
        located = (shape, dtype, offset)
        self._headers[name] = located
        return located

    @staticmethod
    def _read_npy_header(
        stream: IO[bytes],
    ) -> tuple[tuple[int, ...], bool, np.dtype[Any]]:
        version = np.lib.format.read_magic(stream)
        if version == (1, 0):
            return np.lib.format.read_array_header_1_0(stream)
        if version == (2, 0):
            return np.lib.format.read_array_header_2_0(stream)
        raise DatasetError(f"unsupported .npy member format version: {version}")

    def header(self, name: str) -> tuple[tuple[int, ...], np.dtype[Any]]:
        """Member *name*'s ``(shape, dtype)`` without reading its data."""
        shape, dtype, _offset = self._locate(name)
        return shape, dtype

    def data_offset(self, name: str) -> int:
        """Byte offset of *name*'s raw array data; ``-1`` when not raw."""
        _shape, _dtype, offset = self._locate(name)
        return offset

    def array(self, name: str, *, mmap: bool = False) -> NDArray[Any]:
        """Member *name* as an array.

        Raw members are read with a bounded buffered copy, or mapped
        read-only when ``mmap=True``.  Non-raw members (compressed,
        Fortran, object dtype) are decoded through the zip stream.
        """
        shape, dtype, offset = self._locate(name)
        if offset < 0:
            with self._zip.open(name + ".npy") as stream:
                decoded: NDArray[Any] = np.lib.format.read_array(
                    stream, allow_pickle=False
                )
            return decoded
        count = math.prod(shape)
        if count == 0:
            return np.empty(shape, dtype=dtype)
        if mmap:
            mapped: NDArray[Any] = np.memmap(
                self._path, mode="r", dtype=dtype, shape=shape, offset=offset
            )
            return mapped
        flat = np.fromfile(self._path, dtype=dtype, count=count, offset=offset)
        if flat.size != count:
            raise DatasetError(
                f"corrupt or truncated dataset file: {self._path} "
                f"(member {name!r} holds {flat.size} of {count} items)"
            )
        return flat.reshape(shape)


@dataclass(frozen=True)
class StoreHeader:
    """The day-range header every shard of one store must agree on."""

    start: datetime.date
    window_days: int
    num_snapshots: int

    def describe(self) -> str:
        return (
            f"{self.num_snapshots} x {self.window_days}d "
            f"from {self.start.isoformat()}"
        )


@dataclass(frozen=True)
class ShardInfo:
    """One manifest row: a shard's block range, address range, and hash."""

    name: str
    block_start: int
    block_stop: int
    base_lo: int
    base_hi: int  # exclusive
    sha256: str
    nbytes: int

    @property
    def num_blocks(self) -> int:
        return self.block_stop - self.block_start

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "block_start": self.block_start,
            "block_stop": self.block_stop,
            "base_lo": self.base_lo,
            "base_hi": self.base_hi,
            "sha256": self.sha256,
            "bytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardInfo":
        try:
            return cls(
                name=str(payload["name"]),
                block_start=int(payload["block_start"]),
                block_stop=int(payload["block_stop"]),
                base_lo=int(payload["base_lo"]),
                base_hi=int(payload["base_hi"]),
                sha256=str(payload["sha256"]),
                nbytes=int(payload["bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed store manifest shard entry: {exc}") from exc


class StoreShard:
    """One shard of a store: lazy reader plus its manifest row."""

    def __init__(self, root: str | os.PathLike[str], info: ShardInfo) -> None:
        self.info = info
        self.path = os.path.join(os.fspath(root), info.name)
        self._reader: RawNpzReader | None = None
        self._header: StoreHeader | None = None
        self._sizes: list[int] | None = None

    def reader(self) -> RawNpzReader:
        if self._reader is None:
            try:
                self._reader = RawNpzReader(self.path)
            except FileNotFoundError as exc:
                raise DatasetError(f"missing store shard file: {self.path}") from exc
            except _CORRUPT_NPZ_ERRORS as exc:
                raise DatasetError(
                    f"corrupt or unreadable store shard: {self.path} ({exc})"
                ) from exc
        return self._reader

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None

    def _scalar(self, name: str) -> int:
        try:
            return int(self.reader().array(name)[0])
        except (KeyError, IndexError) as exc:
            raise DatasetError(
                f"not a store shard: {self.path} (missing member {name!r})"
            ) from exc
        except _CORRUPT_NPZ_ERRORS as exc:
            raise DatasetError(
                f"corrupt or truncated store shard: {self.path} ({exc})"
            ) from exc

    def header(self) -> StoreHeader:
        """The shard's day-range header (validated dataset version)."""
        if self._header is None:
            version = self._scalar("version")
            if version != _DATASET_VERSION:
                raise DatasetError(
                    f"unsupported dataset format version in shard "
                    f"{self.path}: {version}"
                )
            self._header = StoreHeader(
                start=datetime.date.fromordinal(self._scalar("start")),
                window_days=self._scalar("window_days"),
                num_snapshots=self._scalar("num_snapshots"),
            )
        return self._header

    def ranges(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """The shard's recorded ``(block_range, base_range)`` members."""
        try:
            block_range = self.reader().array("block_range")
            base_range = self.reader().array("base_range")
        except _CORRUPT_NPZ_ERRORS as exc:
            raise DatasetError(
                f"corrupt or truncated store shard: {self.path} ({exc})"
            ) from exc
        if block_range.size != 2 or base_range.size != 2:
            raise DatasetError(f"malformed range members in shard: {self.path}")
        return (
            (int(block_range[0]), int(block_range[1])),
            (int(base_range[0]), int(base_range[1])),
        )

    def snapshot_sizes(self) -> list[int]:
        """Active addresses per snapshot, from headers only (no data read)."""
        if self._sizes is None:
            count = self.header().num_snapshots
            sizes: list[int] = []
            for index in range(count):
                shape, _dtype = self.reader().header(f"ips_{index}")
                sizes.append(math.prod(shape))
            self._sizes = sizes
        return self._sizes

    def columns(
        self, index: int, *, mmap: bool = False
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        """Snapshot *index*'s ``(ips, hits)`` columns within this shard."""
        try:
            ips = self.reader().array(f"ips_{index}", mmap=mmap)
            hits = self.reader().array(f"hits_{index}", mmap=mmap)
        except _CORRUPT_NPZ_ERRORS as exc:
            raise DatasetError(
                f"corrupt or truncated store shard: {self.path} ({exc})"
            ) from exc
        return ips, hits


def _streamed_digest(
    shards: Sequence[StoreShard],
    start: datetime.date,
    window_days: int,
    num_snapshots: int,
) -> str:
    """The dataset SHA-256, computed shard-at-a-time in bounded memory.

    Byte-for-byte the same stream as
    :func:`repro.obs.manifest.dataset_digest` hashes for the in-memory
    dataset: the header line, then per snapshot, per column kind, the
    dtype/size prefix followed by the column bytes.  A store's column
    is split across shards in ascending address order, so feeding each
    shard's member bytes in shard order reproduces the concatenated
    column exactly — holding only one member in memory at a time.
    """
    digest = hashlib.sha256()
    digest.update(f"v1|{start.toordinal()}|{window_days}|{num_snapshots}".encode())
    try:
        sizes = [shard.snapshot_sizes() for shard in shards]
        for index in range(num_snapshots):
            total = sum(per_shard[index] for per_shard in sizes)
            for member_prefix, expected_dtype in (("ips", "<u4"), ("hits", "<u8")):
                digest.update(f"|{expected_dtype}|{total}|".encode())
                for shard in shards:
                    column = shard.reader().array(f"{member_prefix}_{index}")
                    if column.dtype.str != expected_dtype:
                        raise DatasetError(
                            f"bad column dtype in shard {shard.path}: "
                            f"{member_prefix}_{index} is {column.dtype.str}, "
                            f"expected {expected_dtype}"
                        )
                    digest.update(column.tobytes())
    finally:
        # Each shard's reader was opened here; release every one even
        # on a mid-stream error (the callers' shards reopen lazily).
        for shard in shards:
            shard.close()
    return digest.hexdigest()


class DatasetStore:
    """A validated handle to an on-disk sharded dataset store.

    Open one with :meth:`DatasetStore.open` (or
    :func:`repro.core.io.open_store`).  Opening validates the manifest
    and every shard's header eagerly — block ranges must tile
    ``[0, num_blocks)`` contiguously, address ranges must be
    256-aligned, ascending, and disjoint, and every shard must agree on
    the day range — but reads shard *data* lazily, one member at a
    time.
    """

    def __init__(
        self,
        root: str,
        *,
        start: datetime.date,
        window_days: int,
        num_snapshots: int,
        shard_blocks: int,
        num_blocks: int,
        dataset_sha256: str,
        shards: list[StoreShard],
    ) -> None:
        self.root = root
        self.start = start
        self.window_days = window_days
        self.num_snapshots = num_snapshots
        self.shard_blocks = shard_blocks
        self.num_blocks = num_blocks
        self.dataset_sha256 = dataset_sha256
        self.shards = shards

    def __repr__(self) -> str:
        return (
            f"DatasetStore({self.root!r}, {self.num_blocks} blocks / "
            f"{len(self.shards)} shards, {self.num_snapshots} x "
            f"{self.window_days}d from {self.start.isoformat()})"
        )

    def __len__(self) -> int:
        return self.num_snapshots

    @property
    def total_days(self) -> int:
        """Days covered end to end."""
        return self.num_snapshots * self.window_days

    @property
    def header(self) -> StoreHeader:
        return StoreHeader(self.start, self.window_days, self.num_snapshots)

    def snapshot_start(self, index: int) -> datetime.date:
        return self.start + datetime.timedelta(days=index * self.window_days)

    def active_counts(self) -> NDArray[np.int64]:
        """Active addresses per snapshot — from ``.npy`` headers only."""
        counts = np.zeros(self.num_snapshots, dtype=np.int64)
        for shard in self.shards:
            counts += np.asarray(shard.snapshot_sizes(), dtype=np.int64)
        return counts

    def nbytes(self) -> int:
        """Total shard file bytes, per the manifest."""
        return sum(shard.info.nbytes for shard in self.shards)

    def active_block_bases(self) -> NDArray[np.int64]:
        """Sorted /24 bases with any activity, streamed shard by shard.

        Shards cover ascending disjoint address ranges, so per-shard
        sorted base sets concatenate into the global sorted base table;
        peak memory is one shard's columns plus the base table itself
        (O(active /24s), not O(addresses)).
        """
        parts: list[NDArray[np.int64]] = []
        for shard in self.shards:
            try:
                masked = [
                    (shard.columns(index)[0] & np.uint32(0xFFFFFF00)).astype(
                        np.int64
                    )
                    for index in range(self.num_snapshots)
                ]
                nonempty = [blocks for blocks in masked if blocks.size]
                if nonempty:
                    parts.append(
                        np.unique(np.concatenate(nonempty))  # bounded: one shard
                    )
            finally:
                shard.close()
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)  # O(active /24s), not O(addresses)

    def column_slice(
        self, index: int, lo: int, hi: int
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        """Snapshot *index*'s ``(ips, hits)`` restricted to ``[lo, hi]``.

        *hi* is inclusive (the exclusive bound of the top /24 would
        overflow ``uint32``).  Reads only the shards whose address
        range overlaps the request, so the result is bounded by the
        requested slice plus one shard's columns.
        """
        ips_parts: list[NDArray[Any]] = []
        hits_parts: list[NDArray[Any]] = []
        for shard in self.shards:
            if shard.info.base_hi <= lo or shard.info.base_lo > hi:
                continue
            ips, hits = shard.columns(index)
            left = int(np.searchsorted(ips, lo))
            right = int(np.searchsorted(ips, hi, side="right"))
            if right > left:
                ips_parts.append(ips[left:right])
                hits_parts.append(hits[left:right])
        if not ips_parts:
            return np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint64)
        return (
            np.concatenate(ips_parts),  # bounded: one requested address slice
            np.concatenate(hits_parts),  # bounded: one requested address slice
        )

    def iter_union_runs(self) -> Iterator[tuple[NDArray[Any], NDArray[Any]]]:
        """Sorted ``(ips, hits)`` union runs, one per shard, streaming.

        Concatenating every run reproduces ``kway_union`` of the whole
        dataset; peak memory is one shard's columns plus one run.
        """
        from repro.core.index import iter_union_runs

        def groups() -> Iterator[tuple[list[NDArray[Any]], list[NDArray[Any]]]]:
            for shard in self.shards:
                # finally, not close-after-yield: an abandoned generator
                # only runs finally blocks, and an exception mid-read
                # must not leak the open reader.
                try:
                    ips_parts: list[NDArray[Any]] = []
                    hits_parts: list[NDArray[Any]] = []
                    for index in range(self.num_snapshots):
                        ips, hits = shard.columns(index)
                        if ips.size:
                            ips_parts.append(ips)
                            hits_parts.append(hits)
                    yield ips_parts, hits_parts
                finally:
                    shard.close()

        return iter_union_runs(groups())

    def to_dataset(self, *, mmap: bool = True) -> ActivityDataset:
        """Materialize the full in-memory dataset, bit-identically.

        Shards cover disjoint ascending address ranges, so per-snapshot
        concatenation in shard order yields the legacy sorted columns
        (``Snapshot`` re-validates strict ascent).  ``mmap=True`` backs
        the columns with read-only maps instead of copies.
        """
        snapshots: list[Snapshot] = []
        for index in range(self.num_snapshots):
            ips_parts: list[NDArray[Any]] = []
            hits_parts: list[NDArray[Any]] = []
            for shard in self.shards:
                ips, hits = shard.columns(index, mmap=mmap)
                if ips.size:
                    ips_parts.append(ips)
                    hits_parts.append(hits)
            if ips_parts:
                # Materializing is this method's contract:
                ips_col: NDArray[Any] = np.concatenate(ips_parts)  # whole matrix wanted
                hits_col: NDArray[Any] = np.concatenate(hits_parts)  # whole matrix wanted
            else:
                ips_col = np.empty(0, dtype=np.uint32)
                hits_col = np.empty(0, dtype=np.uint64)
            snapshots.append(
                Snapshot(
                    self.snapshot_start(index), self.window_days, ips_col, hits_col
                )
            )
        return ActivityDataset(snapshots)

    def digest(self) -> str:
        """Recompute the dataset SHA-256 by streaming over the shards."""
        return _streamed_digest(
            self.shards, self.start, self.window_days, self.num_snapshots
        )

    def verify(self) -> None:
        """Re-hash every shard file against its manifest fingerprint."""
        for shard in self.shards:
            digest = hashlib.sha256()
            nbytes = 0
            try:
                with open(shard.path, "rb") as stream:
                    while True:
                        chunk = stream.read(1 << 20)
                        if not chunk:
                            break
                        digest.update(chunk)
                        nbytes += len(chunk)
            except FileNotFoundError as exc:
                raise DatasetError(
                    f"missing store shard file: {shard.path}"
                ) from exc
            if nbytes != shard.info.nbytes or digest.hexdigest() != shard.info.sha256:
                raise DatasetError(
                    f"store shard fingerprint mismatch: {shard.path} does not "
                    f"match the manifest at {store_manifest_path(self.root)}"
                )

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "DatasetStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @classmethod
    def open(cls, path: str | os.PathLike[str]) -> "DatasetStore":
        """Open and validate the store at directory *path*."""
        root = os.fspath(path)
        manifest_file = store_manifest_path(root)
        try:
            with open(manifest_file, encoding="utf-8") as stream:
                payload = json.load(stream)
        except FileNotFoundError as exc:
            raise DatasetError(
                f"no dataset store at: {root} (missing {STORE_MANIFEST_NAME})"
            ) from exc
        except (json.JSONDecodeError, OSError) as exc:
            raise DatasetError(
                f"corrupt or unreadable store manifest: {manifest_file} ({exc})"
            ) from exc
        if not isinstance(payload, dict):
            raise DatasetError(f"malformed store manifest: {manifest_file}")
        try:
            schema = int(payload["schema"])
            start = datetime.date.fromordinal(int(payload["start_ordinal"]))
            window_days = int(payload["window_days"])
            num_snapshots = int(payload["num_snapshots"])
            shard_blocks = int(payload["shard_blocks"])
            num_blocks = int(payload["num_blocks"])
            dataset_sha256 = str(payload["dataset_sha256"])
            shard_entries = list(payload["shards"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                f"malformed store manifest: {manifest_file} ({exc})"
            ) from exc
        if schema != STORE_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported store manifest schema in {manifest_file}: {schema}"
            )
        if window_days < 1 or num_snapshots < 1 or shard_blocks < 1:
            raise DatasetError(f"malformed store manifest: {manifest_file}")
        infos = [ShardInfo.from_dict(entry) for entry in shard_entries]
        next_block = 0
        next_base = 0
        for info in infos:
            if info.name != shard_file_name(info.block_start, info.block_stop):
                raise DatasetError(
                    f"store manifest at {manifest_file} names shard "
                    f"{info.name!r} for block range "
                    f"[{info.block_start}, {info.block_stop})"
                )
            if info.block_start != next_block or info.block_stop <= info.block_start:
                raise DatasetError(
                    f"store shards do not tile the block range: {info.name} "
                    f"starts at block {info.block_start}, expected {next_block}"
                )
            if (
                info.base_lo % _BLOCK_SPAN
                or info.base_hi % _BLOCK_SPAN
                or info.base_lo < next_base
                or info.base_hi - info.base_lo < info.num_blocks * _BLOCK_SPAN
                or info.base_hi > 2**32
            ):
                raise DatasetError(
                    f"store shard {info.name} has a malformed address range "
                    f"[{info.base_lo:#010x}, {info.base_hi:#010x})"
                )
            next_block = info.block_stop
            next_base = info.base_hi
        if next_block != num_blocks:
            raise DatasetError(
                f"store manifest at {manifest_file} declares {num_blocks} "
                f"blocks but its shards cover {next_block}"
            )
        shards = [StoreShard(root, info) for info in infos]
        expected = StoreHeader(start, window_days, num_snapshots)
        reference: StoreShard | None = None
        for shard in shards:
            header = shard.header()
            if reference is None:
                reference = shard
                if header != expected:
                    raise DatasetError(
                        f"store manifest at {manifest_file} declares "
                        f"{expected.describe()} but shard {shard.path} "
                        f"covers {header.describe()}"
                    )
            elif header != reference.header():
                raise DatasetError(
                    f"day-range mismatch between shards: {reference.path} "
                    f"covers {reference.header().describe()} but "
                    f"{shard.path} covers {header.describe()}"
                )
            block_range, base_range = shard.ranges()
            if block_range != (shard.info.block_start, shard.info.block_stop) or (
                base_range != (shard.info.base_lo, shard.info.base_hi)
            ):
                raise DatasetError(
                    f"store shard {shard.path} records ranges "
                    f"{block_range}/{base_range} but the manifest at "
                    f"{manifest_file} declares "
                    f"({shard.info.block_start}, {shard.info.block_stop})/"
                    f"({shard.info.base_lo}, {shard.info.base_hi})"
                )
        return cls(
            root,
            start=start,
            window_days=window_days,
            num_snapshots=num_snapshots,
            shard_blocks=shard_blocks,
            num_blocks=num_blocks,
            dataset_sha256=dataset_sha256,
            shards=shards,
        )


class StoreWriter:
    """Incremental, constant-memory store writer.

    Shards are added one at a time in ascending /24 base order; each
    :meth:`add_shard` validates its columns and writes one raw-member
    ``.npz`` atomically.  :meth:`finalize` computes the streaming
    dataset digest and writes the manifest — which is deleted up front,
    so a crash mid-build leaves "no store here" rather than a manifest
    pointing at half-rewritten shards.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        start: datetime.date,
        window_days: int,
        num_snapshots: int,
        shard_blocks: int,
    ) -> None:
        if window_days < 1:
            raise DatasetError(f"bad window length: {window_days}")
        if num_snapshots < 1:
            raise DatasetError(f"bad snapshot count: {num_snapshots}")
        if shard_blocks < 1:
            raise DatasetError(f"bad shard size: {shard_blocks} blocks")
        self._root = os.fspath(root)
        os.makedirs(self._root, exist_ok=True)
        manifest_file = store_manifest_path(self._root)
        if os.path.exists(manifest_file):
            os.unlink(manifest_file)
        self._start = start
        self._window_days = window_days
        self._num_snapshots = num_snapshots
        self._shard_blocks = shard_blocks
        self._infos: list[ShardInfo] = []
        self._next_block = 0
        self._next_base = 0
        self._finalized = False

    @property
    def root(self) -> str:
        return self._root

    def add_shard(
        self,
        bases: NDArray[Any],
        columns: Sequence[tuple[NDArray[Any], NDArray[Any]]],
    ) -> ShardInfo:
        """Write the next shard covering the /24 *bases* (sorted, aligned).

        *columns* holds one ``(ips, hits)`` pair per snapshot,
        restricted to the shard's address range; ``ips`` must be sorted
        strictly ascending ``uint32`` and every address must fall in
        one of *bases*.  Raises :class:`DatasetError` on any violation
        — including a shard boundary that would split a /24.
        """
        if self._finalized:
            raise DatasetError("store already finalized")
        base_array = np.asarray(bases, dtype=np.int64)
        if base_array.ndim != 1 or base_array.size == 0:
            raise DatasetError("a store shard must cover at least one /24 block")
        misaligned = base_array[base_array % _BLOCK_SPAN != 0]
        if misaligned.size:
            raise DatasetError(
                f"shard boundary splits a /24: base {int(misaligned[0]):#010x} "
                "is not 256-aligned"
            )
        if base_array.size > 1 and not (base_array[1:] > base_array[:-1]).all():
            raise DatasetError("shard /24 bases must be strictly ascending")
        if int(base_array[0]) < self._next_base:
            raise DatasetError(
                "shards must be added in ascending address order: base "
                f"{int(base_array[0]):#010x} precedes the previous shard's "
                f"end {self._next_base:#010x}"
            )
        if int(base_array[0]) < 0 or int(base_array[-1]) >= 2**32:
            raise DatasetError(
                f"shard /24 base out of the IPv4 range: {int(base_array[-1])}"
            )
        if len(columns) != self._num_snapshots:
            raise DatasetError(
                f"shard has {len(columns)} columns for "
                f"{self._num_snapshots} snapshots"
            )
        base_lo = int(base_array[0])
        base_hi = int(base_array[-1]) + _BLOCK_SPAN
        block_start = self._next_block
        block_stop = block_start + int(base_array.size)
        arrays: dict[str, NDArray[Any]] = {
            "version": np.array([_DATASET_VERSION]),
            "start": np.array([self._start.toordinal()]),
            "window_days": np.array([self._window_days]),
            "num_snapshots": np.array([self._num_snapshots]),
            "block_range": np.array([block_start, block_stop], dtype=np.int64),
            "base_range": np.array([base_lo, base_hi], dtype=np.int64),
        }
        for index, (ips, hits) in enumerate(columns):
            ips_col = np.ascontiguousarray(ips, dtype=np.uint32)
            hits_col = np.ascontiguousarray(hits, dtype=np.uint64)
            if ips_col.ndim != 1 or hits_col.shape != ips_col.shape:
                raise DatasetError(
                    f"snapshot {index} column shape mismatch in shard "
                    f"[{block_start}, {block_stop})"
                )
            if ips_col.size:
                if ips_col.size > 1 and not (ips_col[1:] > ips_col[:-1]).all():
                    raise DatasetError(
                        f"snapshot {index} addresses are not strictly "
                        f"ascending in shard [{block_start}, {block_stop})"
                    )
                if int(ips_col[0]) < base_lo or int(ips_col[-1]) >= base_hi:
                    raise DatasetError(
                        f"snapshot {index} has addresses outside shard range "
                        f"[{base_lo:#010x}, {base_hi:#010x})"
                    )
                blocks = (ips_col & np.uint32(0xFFFFFF00)).astype(np.int64)
                positions = np.searchsorted(base_array, blocks)
                if not (base_array[positions] == blocks).all():
                    raise DatasetError(
                        f"snapshot {index} has addresses in a /24 outside "
                        f"this shard's block set"
                    )
                if int(hits_col.min()) == 0:
                    raise DatasetError(
                        "active addresses must have at least one hit"
                    )
            arrays[f"ips_{index}"] = ips_col
            arrays[f"hits_{index}"] = hits_col
        name = shard_file_name(block_start, block_stop)
        path = os.path.join(self._root, name)
        atomic_write_npz(path, arrays, compress=False)
        digest = hashlib.sha256()
        nbytes = 0
        with open(path, "rb") as stream:
            while True:
                chunk = stream.read(1 << 20)
                if not chunk:
                    break
                digest.update(chunk)
                nbytes += len(chunk)
        info = ShardInfo(
            name=name,
            block_start=block_start,
            block_stop=block_stop,
            base_lo=base_lo,
            base_hi=base_hi,
            sha256=digest.hexdigest(),
            nbytes=nbytes,
        )
        self._infos.append(info)
        self._next_block = block_stop
        self._next_base = base_hi
        obs.add("store_shards_written_total")
        return info

    def finalize(self) -> DatasetStore:
        """Digest the shards, write the manifest, return the open store."""
        if self._finalized:
            raise DatasetError("store already finalized")
        self._finalized = True
        shards = [StoreShard(self._root, info) for info in self._infos]
        dataset_sha256 = _streamed_digest(
            shards, self._start, self._window_days, self._num_snapshots
        )
        payload = {
            "schema": STORE_FORMAT_VERSION,
            "start_ordinal": self._start.toordinal(),
            "window_days": self._window_days,
            "num_snapshots": self._num_snapshots,
            "shard_blocks": self._shard_blocks,
            "num_blocks": self._next_block,
            "dataset_sha256": dataset_sha256,
            "shards": [info.as_dict() for info in self._infos],
        }
        atomic_write_text(
            store_manifest_path(self._root),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        for shard in shards:
            shard.close()
        obs.add("stores_finalized_total")
        return DatasetStore(
            self._root,
            start=self._start,
            window_days=self._window_days,
            num_snapshots=self._num_snapshots,
            shard_blocks=self._shard_blocks,
            num_blocks=self._next_block,
            dataset_sha256=dataset_sha256,
            shards=shards,
        )


#: Commit-protocol phase names passed to a :class:`StoreAppender` hook.
COMMIT_PHASE_FINALIZED = "generation-finalized"
COMMIT_PHASE_FLIPPED = "pointer-flipped"


class StoreAppender:
    """Append one snapshot interval at a time to a **live** store.

    A live store root holds generation directories — each a complete,
    independently valid store — plus a ``live.json`` pointer naming the
    committed one::

        <root>/
            live.json                # {"schema": 1, "generation": 2}
            gen_000002/              # the committed 2-snapshot store
                store.manifest.json
                shard_*.npz

    :meth:`append` builds generation ``k+1`` beside the committed
    generation ``k`` (re-slicing the old columns plus the new one into
    fresh shards), finalizes its manifest, then atomically flips the
    pointer and garbage-collects the old generation.  The pointer flip
    is the *only* commit point, so a crash at any instant leaves either
    generation ``k`` or generation ``k+1`` committed — never a torn
    store — and a restarted service replays the missed interval into
    the same (deterministic) bytes.

    The optional *commit_hook* is called with
    :data:`COMMIT_PHASE_FINALIZED` after the new generation's manifest
    lands and :data:`COMMIT_PHASE_FLIPPED` after the pointer flip;
    fault-injection tests use it to kill the process at the
    worst-possible instants.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        start: datetime.date,
        window_days: int,
        shard_blocks: int = 256,
        commit_hook: Callable[[str], None] | None = None,
    ) -> None:
        if window_days < 1:
            raise DatasetError(f"bad window length: {window_days}")
        if shard_blocks < 1:
            raise DatasetError(f"bad shard size: {shard_blocks} blocks")
        self._root = os.fspath(root)
        if os.path.isfile(store_manifest_path(self._root)):
            raise DatasetError(
                f"not a live store: {self._root} holds a plain store manifest"
            )
        os.makedirs(self._root, exist_ok=True)
        self._start = start
        self._window_days = window_days
        self._shard_blocks = shard_blocks
        self._commit_hook = commit_hook
        self._store: DatasetStore | None = None
        generation = read_live_pointer(self._root)
        self._committed = 0 if generation is None else generation
        if generation is not None:
            store = DatasetStore.open(
                os.path.join(self._root, generation_dir_name(generation))
            )
            if store.num_snapshots != generation:
                raise DatasetError(
                    f"live store at {self._root} points at generation "
                    f"{generation} holding {store.num_snapshots} snapshots"
                )
            if (
                store.start != start
                or store.window_days != window_days
                or store.shard_blocks != shard_blocks
            ):
                raise DatasetError(
                    f"live store at {self._root} was built with "
                    f"start={store.start.isoformat()} "
                    f"window_days={store.window_days} "
                    f"shard_blocks={store.shard_blocks}; refusing to append "
                    f"with start={start.isoformat()} "
                    f"window_days={window_days} shard_blocks={shard_blocks}"
                )
            self._store = store

    @property
    def root(self) -> str:
        return self._root

    @property
    def committed(self) -> int:
        """Number of snapshots in the committed generation (0 = none)."""
        return self._committed

    @property
    def store(self) -> DatasetStore | None:
        """The committed generation's store, or ``None`` before any commit."""
        return self._store

    def _signal(self, phase: str) -> None:
        if self._commit_hook is not None:
            self._commit_hook(phase)

    @staticmethod
    def _validated_column(
        ips: NDArray[Any], hits: NDArray[Any]
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        ips_col = np.ascontiguousarray(ips, dtype=np.uint32)
        hits_col = np.ascontiguousarray(hits, dtype=np.uint64)
        if ips_col.ndim != 1 or hits_col.shape != ips_col.shape:
            raise DatasetError("appended snapshot column shape mismatch")
        if ips_col.size > 1 and not (ips_col[1:] > ips_col[:-1]).all():
            raise DatasetError(
                "appended snapshot addresses are not strictly ascending"
            )
        return ips_col, hits_col

    def append(self, ips: NDArray[Any], hits: NDArray[Any]) -> DatasetStore:
        """Commit snapshot ``committed + 1`` and return the new store.

        *ips*/*hits* are one interval's sorted sparse columns (the
        shapes every snapshot carries).  The commit is crash-safe: the
        new generation's manifest is written before the pointer flips,
        and the old generation is removed only after.
        """
        ips_col, hits_col = self._validated_column(ips, hits)
        generation = self._committed + 1
        gen_dir = os.path.join(self._root, generation_dir_name(generation))
        if os.path.isdir(gen_dir):
            # A crash between finalize and pointer flip leaves a complete
            # but uncommitted generation; rebuilding it from scratch is
            # deterministic, so replay converges on identical bytes.
            shutil.rmtree(gen_dir)  # reprolint: disable=P602 -- removes only the *uncommitted* next generation, which no pointer has ever named; the committed generation is untouched (covered by the commit-phase fault-injection tests)
        prev = self._store
        if prev is None:
            prev_bases = np.empty(0, dtype=np.int64)
        else:
            prev_bases = prev.active_block_bases()
        new_bases = np.unique(
            (ips_col & np.uint32(0xFFFFFF00)).astype(np.int64)
        )
        union = np.union1d(prev_bases, new_bases)
        writer = StoreWriter(
            gen_dir,
            start=self._start,
            window_days=self._window_days,
            num_snapshots=generation,
            shard_blocks=self._shard_blocks,
        )
        for offset in range(0, int(union.size), self._shard_blocks):
            chunk = union[offset : offset + self._shard_blocks]
            lo = int(chunk[0])
            hi = int(chunk[-1]) + _BLOCK_SPAN - 1  # inclusive top address
            columns: list[tuple[NDArray[Any], NDArray[Any]]] = []
            for index in range(self._committed):
                assert prev is not None
                columns.append(prev.column_slice(index, lo, hi))
            left = int(np.searchsorted(ips_col, lo))
            right = int(np.searchsorted(ips_col, hi, side="right"))
            columns.append((ips_col[left:right], hits_col[left:right]))
            writer.add_shard(chunk, columns)
        store = writer.finalize()
        self._signal(COMMIT_PHASE_FINALIZED)
        atomic_write_text(
            live_pointer_path(self._root),
            json.dumps(
                {"schema": LIVE_POINTER_VERSION, "generation": generation},
                sort_keys=True,
            )
            + "\n",
        )
        self._signal(COMMIT_PHASE_FLIPPED)
        if prev is not None:
            prev.close()
        for entry in os.listdir(self._root):
            match = _GENERATION_PATTERN.match(entry)
            if match is not None and int(match.group(1)) != generation:
                shutil.rmtree(os.path.join(self._root, entry), ignore_errors=True)
        self._store = store
        self._committed = generation
        obs.add("store_appends_total")
        return store

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "StoreAppender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
