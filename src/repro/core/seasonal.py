"""Day-of-week structure in address activity (Fig. 4a's texture).

The paper's daily series shows fewer active addresses on weekends, and
the churn maxima in Fig. 4b come from weekday/weekend boundaries.
This module extracts that structure explicitly: a per-weekday activity
profile, the weekend dip, and the identification of which transitions
carry the churn spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.churn import transition_churn
from repro.core.dataset import ActivityDataset
from repro.errors import DatasetError

WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


@dataclass(frozen=True)
class WeekdayProfile:
    """Mean active addresses per day of week, plus the weekend dip."""

    mean_active: np.ndarray  # length 7, indexed Monday=0
    samples: np.ndarray      # observations per weekday

    def __post_init__(self) -> None:
        if self.mean_active.shape != (7,) or self.samples.shape != (7,):
            raise DatasetError("weekday profile arrays must have length 7")

    @property
    def weekend_dip(self) -> float:
        """Weekend mean over weekday mean (< 1 when weekends are quieter)."""
        weekday = self.mean_active[:5]
        weekend = self.mean_active[5:]
        weekday_mean = float(weekday[self.samples[:5] > 0].mean())
        weekend_mean = float(weekend[self.samples[5:] > 0].mean())
        if weekday_mean == 0:
            raise DatasetError("no weekday observations")
        return weekend_mean / weekday_mean

    def quietest_day(self) -> str:
        observed = np.where(self.samples > 0, self.mean_active, np.inf)
        return WEEKDAY_NAMES[int(np.argmin(observed))]


def weekday_profile(dataset: ActivityDataset) -> WeekdayProfile:
    """Per-weekday mean active counts of a daily dataset."""
    if dataset.window_days != 1:
        raise DatasetError("weekday profile expects a daily dataset")
    totals = np.zeros(7)
    samples = np.zeros(7, dtype=np.int64)
    for snapshot in dataset:
        day = snapshot.start.weekday()
        totals[day] += snapshot.num_active
        samples[day] += 1
    with np.errstate(invalid="ignore"):
        mean = np.where(samples > 0, totals / np.maximum(samples, 1), 0.0)
    return WeekdayProfile(mean_active=mean, samples=samples)


def churn_by_boundary(dataset: ActivityDataset) -> dict[str, float]:
    """Median up-churn split by transition type.

    Returns medians for ``weekday->weekday``, ``weekday->weekend`` and
    ``weekend->weekday`` transitions — the Fig. 4b maxima live on the
    boundary transitions.
    """
    if dataset.window_days != 1:
        raise DatasetError("boundary churn expects a daily dataset")
    transitions = transition_churn(dataset)
    buckets: dict[str, list[float]] = {
        "weekday->weekday": [],
        "weekday->weekend": [],
        "weekend->weekday": [],
        "weekend->weekend": [],
    }
    for index, transition in enumerate(transitions):
        before = (dataset.start.weekday() + index) % 7
        after = (before + 1) % 7
        key = (
            ("weekday" if before < 5 else "weekend")
            + "->"
            + ("weekday" if after < 5 else "weekend")
        )
        buckets[key].append(transition.up_fraction)
    return {
        key: float(np.median(values)) if values else float("nan")
        for key, values in buckets.items()
    }
