"""Change-point detection: localizing exogenous events in activity series.

The scenario library (:mod:`repro.sim.scenario`) injects exogenous
events — outages, lockdown demand shifts, CGNAT consolidation,
transfer-market reuse, scanner storms, renumbering — into the
simulated world.  This module closes the loop from the *observable*
side: given only an :class:`~repro.core.dataset.ActivityDataset`, it
localizes each injected event to within one window, with no access to
the timeline that produced the data.

Three per-block (/24) channels, all derived from the activity matrix:

- **active** — distinct active addresses per window.  A step change
  (first difference beyond a robust threshold) marks an
  ``activation`` or ``deactivation``: outage boundaries, CGNAT
  consolidation, transfer-market blocks lighting up.
- **hits** — ``log1p`` of the summed hits per window.  A step beyond
  threshold *without* an active-count step marks a ``surge`` or
  ``quiet`` demand change: lockdown start/end.
- **churn** — the symmetric-difference fraction of the block's
  address set between consecutive windows.  An outlier above the
  block's own baseline marks a ``churn`` spike: renumbering.

Robustness choices worth knowing:

- Thresholds are median/MAD per block, so dynamically addressed
  blocks with naturally large day-to-day swings do not false-positive,
  and an absolute floor (:class:`DetectorConfig`) keeps near-constant
  series from flagging on numerically tiny MADs.
- On daily datasets the work-hour blocks carry a weekday/weekend
  seasonality (the ``weekend_work_factor`` swing); every between-window
  boundary is grouped by the weekday classes it spans and each
  channel is residualized against its block's per-group median, so
  the recurring weekend step cancels exactly while a one-off event
  survives.
- An active-count flag suppresses same-(block, window) hits and churn
  flags: an outage necessarily moves all three channels, and the
  active channel is the root cause.
- Flags only become events when at least ``min_blocks`` blocks agree
  on the same (window, kind) — single-block noise never surfaces.

The first window has no predecessor, so nothing is detectable at
window 0; the scenario catalog schedules events from day 2 onward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.core.dataset import ActivityDataset
from repro.core.metrics import compute_block_metrics
from repro.net.ipv4 import format_ip
from repro.obs import context as obs

#: Mask selecting the /24 base of an IPv4 address.
BLOCK_MASK = np.uint32(0xFFFFFF00)

#: Addresses per /24 block — bound for the per-block slice searches.
_BLOCK_SPAN = 256


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds for :func:`detect_events`.

    Attributes:
        min_active_delta: Absolute floor on the active-count first
            difference (addresses) before a step can flag.
        min_log_ratio: Absolute floor on the ``log1p``-hits first
            difference — 0.7 is roughly a 2x volume change.
        min_churn: Absolute floor on a block's churn excess over its
            own median churn.
        mad_k: Robust z-score each channel must exceed (in units of
            ``1.4826 * MAD``) on top of the absolute floor.
        min_blocks: Blocks that must agree on a (window, kind) before
            an event is reported.
    """

    min_active_delta: float = 48.0
    min_log_ratio: float = 0.7
    min_churn: float = 0.35
    mad_k: float = 6.0
    min_blocks: int = 3


@dataclass(frozen=True)
class DetectedEvent:
    """Blocks agreeing on one localized (window, kind) change."""

    window: int
    kind: str
    num_blocks: int
    first_base: int
    last_base: int
    bases: tuple[int, ...]
    magnitude: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (bases rendered as dotted quads)."""
        return {
            "window": self.window,
            "kind": self.kind,
            "num_blocks": self.num_blocks,
            "first_base": format_ip(self.first_base),
            "last_base": format_ip(self.last_base),
            "magnitude": round(self.magnitude, 6),
        }


@dataclass(frozen=True)
class _BlockSeries:
    """Per-block × per-window channel matrices."""

    bases: NDArray[Any]
    active: NDArray[Any]
    hits: NDArray[Any]
    churn: NDArray[Any]


def _block_series(dataset: ActivityDataset) -> _BlockSeries:
    """Active/hits/churn matrices over the union of observed /24s."""
    num_windows = len(dataset)
    parts = [snap.ips & BLOCK_MASK for snap in dataset.snapshots]
    nonempty = [part for part in parts if part.size]
    if not nonempty:
        empty = np.zeros((0, num_windows), dtype=np.float64)
        return _BlockSeries(
            np.empty(0, dtype=np.uint64), empty, empty.copy(), empty.copy()
        )
    bases = np.unique(np.concatenate(nonempty)).astype(np.uint64)
    active = np.zeros((bases.size, num_windows), dtype=np.float64)
    hits = np.zeros_like(active)
    churn = np.zeros_like(active)
    prev_slices: list[NDArray[Any]] | None = None
    for window, (snap, ip_bases) in enumerate(zip(dataset.snapshots, parts)):
        idx = np.searchsorted(bases, ip_bases.astype(np.uint64))
        active[:, window] = np.bincount(idx, minlength=bases.size)
        hits[:, window] = np.bincount(
            idx, weights=snap.hits.astype(np.float64), minlength=bases.size
        )
        lo = np.searchsorted(snap.ips, bases)
        hi = np.searchsorted(snap.ips, bases + _BLOCK_SPAN)
        cur_slices = [
            snap.ips[lo[b] : hi[b]] for b in range(bases.size)
        ]
        if prev_slices is not None:
            for b in range(bases.size):
                before, after = prev_slices[b], cur_slices[b]
                if not before.size and not after.size:
                    continue
                inter = np.intersect1d(
                    before, after, assume_unique=True
                ).size
                union = before.size + after.size - inter
                churn[b, window] = (union - inter) / union
        prev_slices = cur_slices
    return _BlockSeries(bases, active, hits, churn)


def _weekday_classes(dataset: ActivityDataset) -> NDArray[Any]:
    """0 for weekday windows, 1 for weekend — daily datasets only.

    At coarser windows each window mixes both classes, so the weekly
    seasonality averages out and no residual is needed (all zeros).
    """
    if dataset.window_days != 1:
        return np.zeros(len(dataset), dtype=np.int64)
    return np.array(
        [1 if snap.start.weekday() >= 5 else 0 for snap in dataset.snapshots],
        dtype=np.int64,
    )


def _transition_types(classes: NDArray[Any]) -> NDArray[Any]:
    """Class-transition label per between-window boundary.

    Boundary ``i`` (into window ``i + 1``) is labelled by the ordered
    pair of weekday classes it spans, so weekday→weekend boundaries
    form their own baseline group separate from weekday→weekday ones.
    """
    return classes[:-1] * 2 + classes[1:]


def _transition_residuals(
    values: NDArray[Any], transitions: NDArray[Any]
) -> NDArray[Any]:
    """Subtract each block's median per transition type.

    A weekly seasonality produces the *same* step at every boundary of
    a given transition type, so the per-type median removes it exactly
    while a one-off event (one large value in its group) barely moves
    the median and survives as a residual.  Groups too small for a
    robust median (< 3 boundaries) fall back to the block's overall
    median, so short series degrade gracefully instead of silently
    cancelling a real event against itself.
    """
    overall = np.median(values, axis=1, keepdims=True)
    resid = values - overall
    for transition in range(4):
        cols = np.flatnonzero(transitions == transition)
        if cols.size >= 3:
            resid[:, cols] = values[:, cols] - np.median(
                values[:, cols], axis=1, keepdims=True
            )
    return resid


def _step_deltas(
    series: NDArray[Any],
    transitions: NDArray[Any],
    abs_floor: float,
    mad_k: float,
) -> tuple[NDArray[Any], NDArray[Any]]:
    """Seasonality-adjusted first differences and their outlier flags.

    Column ``i`` of the returned arrays describes the step *into*
    window ``i + 1``.
    """
    deltas = _transition_residuals(np.diff(series, axis=1), transitions)
    med = np.median(deltas, axis=1, keepdims=True)
    sigma = 1.4826 * np.median(np.abs(deltas - med), axis=1, keepdims=True)
    threshold = np.maximum(abs_floor, mad_k * sigma)
    return deltas, np.abs(deltas) > threshold


def _churn_flags(
    churn: NDArray[Any],
    transitions: NDArray[Any],
    abs_floor: float,
    mad_k: float,
) -> NDArray[Any]:
    """Outlier flags on the churn matrix (columns 1..W-1 meaningful).

    Churn is already a between-window change measure, so it is
    residualized per transition type (weekend boundaries churn more)
    and thresholded directly.  The scale estimate is the 75th
    percentile of the absolute residuals rather than the MAD: blocks
    whose address sets turn over wholesale on a sizable minority of
    windows (servers, crawlers) then carry a scale near 1.0 and never
    flag, while a genuinely stable block still gets a tight threshold.
    """
    resid = _transition_residuals(churn[:, 1:], transitions)
    scale = np.quantile(np.abs(resid), 0.75, axis=1, keepdims=True)
    flags = np.zeros(churn.shape, dtype=bool)
    flags[:, 1:] = resid > np.maximum(abs_floor, mad_k * scale)
    return flags


def detect_events(
    dataset: ActivityDataset, config: DetectorConfig | None = None
) -> list[DetectedEvent]:
    """Localize exogenous change points in *dataset* to one window.

    Returns events sorted by ``(window, kind)``.  Kinds: ``activation``
    / ``deactivation`` (active-count step up/down), ``surge`` /
    ``quiet`` (hit-volume step with no active step), and ``churn``
    (address-set turnover spike).  An empty list means no window has
    ``min_blocks`` blocks agreeing on a change — the no-event
    baseline.
    """
    if config is None:
        config = DetectorConfig()
    if len(dataset) < 2:
        return []
    with obs.span("analyze/detect_events"):
        series = _block_series(dataset)
        transitions = _transition_types(_weekday_classes(dataset))
        active_d, active_flag = _step_deltas(
            series.active, transitions, config.min_active_delta, config.mad_k
        )
        hits_d, hits_flag = _step_deltas(
            np.log1p(series.hits),
            transitions,
            config.min_log_ratio,
            config.mad_k,
        )
        churn_flag = _churn_flags(
            series.churn, transitions, config.min_churn, config.mad_k
        )
        grouped: dict[tuple[int, str], list[tuple[int, float]]] = {}
        for b in range(series.bases.size):
            base = int(series.bases[b])
            for window in range(1, len(dataset)):
                i = window - 1
                if active_flag[b, i]:
                    kind = (
                        "activation" if active_d[b, i] > 0 else "deactivation"
                    )
                    grouped.setdefault((window, kind), []).append(
                        (base, abs(float(active_d[b, i])))
                    )
                    # The active step explains the hit and churn moves
                    # at this (block, window): report the root cause
                    # only.
                    continue
                if hits_flag[b, i]:
                    kind = "surge" if hits_d[b, i] > 0 else "quiet"
                    grouped.setdefault((window, kind), []).append(
                        (base, abs(float(hits_d[b, i])))
                    )
                if churn_flag[b, window]:
                    grouped.setdefault((window, "churn"), []).append(
                        (base, float(series.churn[b, window]))
                    )
        events = []
        for (window, kind), members in sorted(grouped.items()):
            if len(members) < config.min_blocks:
                continue
            bases = tuple(base for base, _ in members)
            magnitudes = np.array([mag for _, mag in members])
            events.append(
                DetectedEvent(
                    window=window,
                    kind=kind,
                    num_blocks=len(members),
                    first_base=bases[0],
                    last_base=bases[-1],
                    bases=bases,
                    magnitude=float(np.median(magnitudes)),
                )
            )
        obs.add("analyze_detected_events_total", len(events))
    return events


def scenario_signature(
    dataset: ActivityDataset, config: DetectorConfig | None = None
) -> dict[str, Any]:
    """A compact, pinnable summary of a scenario run's observables.

    The golden-scenario catalog stores this dict (plus the dataset
    SHA-256) per scenario; the CI job recomputes and diffs it.  All
    values are derived deterministically from the dataset, so any
    engine or scenario-compiler drift shows up as a signature diff.
    """
    metrics = compute_block_metrics(dataset)
    events = detect_events(dataset, config)
    series = _block_series(dataset)
    peak_window = 0
    peak_churn = 0.0
    if series.bases.size and len(dataset) >= 2:
        mean_churn = series.churn[:, 1:].mean(axis=0)
        peak_window = int(np.argmax(mean_churn)) + 1
        peak_churn = float(mean_churn[peak_window - 1])
    return {
        "num_windows": len(dataset),
        "window_days": dataset.window_days,
        "num_blocks": int(series.bases.size),
        "median_fd": float(np.median(metrics.filling_degree)),
        "median_stu": round(float(np.median(metrics.stu)), 9),
        "total_active": int(
            sum(snap.ips.size for snap in dataset.snapshots)
        ),
        "total_hits": int(
            sum(int(snap.hits.sum()) for snap in dataset.snapshots)
        ),
        "peak_churn_window": peak_window,
        "peak_churn": round(peak_churn, 9),
        "events": [event.to_dict() for event in events],
    }
