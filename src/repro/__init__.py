"""repro — spatio-temporal analysis of the active IPv4 address space.

A from-scratch reproduction of Richter, Smaragdakis, Plonka and Berger,
*"Beyond Counting: New Perspectives on the Active IPv4 Address Space"*
(ACM IMC 2016).

The package is organised in layers:

- :mod:`repro.net` — IPv4 addresses, prefixes, tries, range sets.
- :mod:`repro.registry` — RIRs, delegations, country data.
- :mod:`repro.routing` — BGP routing-table snapshots and series.
- :mod:`repro.rdns` — reverse-DNS synthesis and classification.
- :mod:`repro.sim` — the synthetic Internet population and the CDN /
  scanner observatories standing in for the paper's proprietary data.
- :mod:`repro.core` — the paper's analyses: churn, block metrics
  (filling degree, spatio-temporal utilization), change detection,
  traffic correlation, host-count estimation, demographics.
- :mod:`repro.report` — plain-text rendering of tables and figures.
- :mod:`repro.obs` — observability: timing spans, counters, run
  manifests, and exporters for the collection/analysis pipeline.

Quick start::

    from repro import sim, core

    world = sim.InternetPopulation.build(sim.SimulationConfig(seed=7))
    cdn = sim.CDNObservatory(world)
    dataset = cdn.collect_daily(num_days=28)
    stats = core.churn.daily_churn(dataset)
    print(stats.median_up_fraction)
"""

from repro import baselines, core, net, obs, rdns, registry, report, routing, sim
from repro.errors import (
    AddressError,
    ConfigError,
    DatasetError,
    ObservabilityError,
    PrefixError,
    RegistryError,
    ReproError,
    RoutingError,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "ConfigError",
    "DatasetError",
    "ObservabilityError",
    "PrefixError",
    "RegistryError",
    "ReproError",
    "RoutingError",
    "__version__",
    "baselines",
    "core",
    "net",
    "obs",
    "rdns",
    "registry",
    "report",
    "routing",
    "sim",
]
