"""Country reference data: subscribers, ICMP behaviour, CGN prevalence.

The paper correlates per-country CDN-visible address counts with ITU
subscriber statistics (Fig. 3b): countries rank similarly by fixed
broadband subscribers and by visible addresses, but *not* by cellular
subscribers, because cellular operators deploy Carrier-Grade NAT and
compress many subscribers onto few addresses.  It also observes that
ICMP responsiveness varies wildly per country (~80% in China vs. ~25%
in Japan).

This module carries a synthetic-but-plausible country table standing in
for the ITU statistics, plus the per-country behavioural parameters the
simulator needs (ICMP response rate, CGN share).  Subscriber figures
are in millions, loosely modelled on 2015 ITU data; what matters for
the reproduction is the *ordering* and the broadband/cellular contrast,
not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegistryError
from repro.registry.rir import RIR


@dataclass(frozen=True)
class Country:
    """Per-country reference record.

    Attributes:
        code: ISO 3166-1 alpha-2 code.
        name: Human-readable name.
        rir: Registry administering the country's address space.
        broadband_subs: Fixed-broadband subscriptions, millions.
        cellular_subs: Cellular subscriptions, millions.
        icmp_response_rate: Fraction of CDN-active client addresses
            that also answer ICMP echo requests.
        cgn_share: Fraction of subscribers reached through carrier-
            grade NAT (address sharing), driving gateway blocks.
    """

    code: str
    name: str
    rir: RIR
    broadband_subs: float
    cellular_subs: float
    icmp_response_rate: float
    cgn_share: float


# One row per country; collectively these cover every RIR with enough
# countries to make regional aggregates meaningful.
COUNTRIES: tuple[Country, ...] = (
    # ARIN
    Country("US", "United States", RIR.ARIN, 102.2, 382.0, 0.55, 0.15),
    Country("CA", "Canada", RIR.ARIN, 13.1, 30.5, 0.55, 0.10),
    # RIPE
    Country("DE", "Germany", RIR.RIPE, 30.7, 96.4, 0.60, 0.10),
    Country("FR", "France", RIR.RIPE, 26.8, 72.0, 0.50, 0.10),
    Country("GB", "United Kingdom", RIR.RIPE, 25.5, 80.3, 0.55, 0.10),
    Country("RU", "Russia", RIR.RIPE, 26.9, 227.3, 0.65, 0.25),
    Country("IT", "Italy", RIR.RIPE, 14.9, 85.6, 0.60, 0.15),
    Country("ES", "Spain", RIR.RIPE, 13.2, 50.8, 0.55, 0.10),
    Country("NL", "Netherlands", RIR.RIPE, 7.0, 19.6, 0.60, 0.05),
    Country("PL", "Poland", RIR.RIPE, 7.3, 56.6, 0.60, 0.20),
    Country("TR", "Turkey", RIR.RIPE, 9.2, 73.6, 0.65, 0.35),
    Country("UA", "Ukraine", RIR.RIPE, 5.1, 60.7, 0.65, 0.30),
    # APNIC
    Country("CN", "China", RIR.APNIC, 200.1, 1291.8, 0.80, 0.60),
    Country("JP", "Japan", RIR.APNIC, 38.7, 160.6, 0.25, 0.20),
    Country("KR", "South Korea", RIR.APNIC, 20.0, 58.9, 0.70, 0.25),
    Country("IN", "India", RIR.APNIC, 17.2, 1001.1, 0.60, 0.90),
    Country("ID", "Indonesia", RIR.APNIC, 4.7, 338.4, 0.55, 0.85),
    Country("AU", "Australia", RIR.APNIC, 6.9, 31.8, 0.50, 0.15),
    Country("VN", "Vietnam", RIR.APNIC, 7.7, 120.6, 0.65, 0.70),
    Country("TH", "Thailand", RIR.APNIC, 6.2, 83.1, 0.60, 0.65),
    Country("PH", "Philippines", RIR.APNIC, 3.4, 118.0, 0.55, 0.85),
    # LACNIC
    Country("BR", "Brazil", RIR.LACNIC, 25.5, 257.8, 0.60, 0.40),
    Country("MX", "Mexico", RIR.LACNIC, 15.7, 107.7, 0.55, 0.40),
    Country("AR", "Argentina", RIR.LACNIC, 6.8, 60.9, 0.60, 0.35),
    Country("CO", "Colombia", RIR.LACNIC, 5.6, 57.3, 0.55, 0.45),
    Country("CL", "Chile", RIR.LACNIC, 2.8, 23.2, 0.55, 0.30),
    # AFRINIC
    Country("ZA", "South Africa", RIR.AFRINIC, 1.7, 87.0, 0.30, 0.60),
    Country("NG", "Nigeria", RIR.AFRINIC, 0.2, 150.8, 0.25, 0.95),
    Country("EG", "Egypt", RIR.AFRINIC, 4.2, 94.0, 0.30, 0.80),
    Country("KE", "Kenya", RIR.AFRINIC, 0.2, 37.7, 0.25, 0.95),
    Country("MA", "Morocco", RIR.AFRINIC, 1.1, 43.1, 0.30, 0.75),
    Country("TN", "Tunisia", RIR.AFRINIC, 0.6, 14.3, 0.30, 0.70),
)

_BY_CODE = {country.code: country for country in COUNTRIES}


def get_country(code: str) -> Country:
    """Look up a country by ISO code; raises :class:`RegistryError`."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError as exc:
        raise RegistryError(f"unknown country code: {code!r}") from exc


def countries_of(rir: RIR) -> list[Country]:
    """All countries administered by *rir*, in table order."""
    return [country for country in COUNTRIES if country.rir == rir]


def _rank_by(attribute: str) -> dict[str, int]:
    ordered = sorted(COUNTRIES, key=lambda c: getattr(c, attribute), reverse=True)
    return {country.code: rank for rank, country in enumerate(ordered, start=1)}


def broadband_ranks() -> dict[str, int]:
    """Country code → rank by fixed-broadband subscribers (1 = most)."""
    return _rank_by("broadband_subs")


def cellular_ranks() -> dict[str, int]:
    """Country code → rank by cellular subscribers (1 = most)."""
    return _rank_by("cellular_subs")


def spearman_rank_correlation(ranks_a: dict[str, int], ranks_b: dict[str, int]) -> float:
    """Spearman correlation between two rank maps over their common keys.

    Used to quantify the Fig. 3b observation: CDN-visible address
    counts correlate strongly with broadband ranks, weakly with
    cellular ranks.
    """
    common = sorted(set(ranks_a) & set(ranks_b))
    if len(common) < 2:
        raise RegistryError("need at least two common countries to correlate")
    n = len(common)
    # Re-rank within the common subset so both sides use ranks 1..n.
    order_a = sorted(common, key=lambda code: ranks_a[code])
    order_b = sorted(common, key=lambda code: ranks_b[code])
    pos_a = {code: i for i, code in enumerate(order_a)}
    pos_b = {code: i for i, code in enumerate(order_b)}
    d_squared = sum((pos_a[code] - pos_b[code]) ** 2 for code in common)
    return 1.0 - (6.0 * d_squared) / (n * (n**2 - 1))
