"""NRO-style delegation table: which registry and country hold each range.

The paper assigns a region and country to every observed address using
the RIRs' extended allocation files (Sec. 3.4).  This module implements
that machinery:

- :class:`DelegationRecord` — one delegated range (registry, country,
  status, date), mirroring one line of an NRO extended delegation file.
- :class:`DelegationTable` — an indexed collection with fast address →
  record lookup, NRO-format round-tripping, and a synthesiser that
  carves a configurable slice of the address space into realistic
  country allocations for the simulation.

The NRO extended format is ``registry|cc|type|start|value|date|status``
with ``value`` the number of addresses in the range.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import RegistryError
from repro.net.ipv4 import format_ip, parse_ip
from repro.net.prefix import Prefix, span_to_prefixes
from repro.net.trie import PrefixTrie
from repro.registry.countries import COUNTRIES, Country, countries_of
from repro.registry.rir import RIR

#: Delegation status values that mean "usable address space".
ACTIVE_STATUSES = frozenset({"allocated", "assigned"})


@dataclass(frozen=True)
class DelegationRecord:
    """One delegated IPv4 range, as in an NRO extended file line."""

    rir: RIR
    country: str
    start: int
    count: int
    date: datetime.date
    status: str = "allocated"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise RegistryError(f"non-positive delegation size: {self.count}")
        if self.start < 0 or self.start + self.count - 1 > 0xFFFFFFFF:
            raise RegistryError(
                f"delegation out of IPv4 space: start={self.start} count={self.count}"
            )

    @property
    def last(self) -> int:
        """Highest address in the range (inclusive)."""
        return self.start + self.count - 1

    def prefixes(self) -> list[Prefix]:
        """CIDR decomposition of the range."""
        return span_to_prefixes(self.start, self.last)

    def to_line(self) -> str:
        """Serialise in NRO extended delegation format."""
        return "|".join(
            [
                self.rir.value,
                self.country,
                "ipv4",
                format_ip(self.start),
                str(self.count),
                self.date.strftime("%Y%m%d"),
                self.status,
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "DelegationRecord":
        """Parse one NRO extended-format line (ipv4 records only)."""
        fields = line.strip().split("|")
        if len(fields) < 7:
            raise RegistryError(f"short delegation line: {line!r}")
        registry, country, family, start, value, date_text, status = fields[:7]
        if family != "ipv4":
            raise RegistryError(f"not an ipv4 delegation: {line!r}")
        try:
            date = datetime.datetime.strptime(date_text, "%Y%m%d").date()
        except ValueError as exc:
            raise RegistryError(f"bad date in delegation line: {line!r}") from exc
        try:
            count = int(value)
        except ValueError as exc:
            raise RegistryError(f"bad count in delegation line: {line!r}") from exc
        return cls(
            rir=RIR.parse(registry),
            country=country.upper(),
            start=parse_ip(start),
            count=count,
            date=date,
            status=status,
        )


class DelegationTable:
    """An indexed set of delegation records with address lookup.

    Records must be non-overlapping; the constructor verifies this so a
    lookup always has exactly one answer.
    """

    def __init__(self, records: Iterable[DelegationRecord]) -> None:
        self._records = sorted(records, key=lambda record: record.start)
        for left, right in zip(self._records, self._records[1:]):
            if left.last >= right.start:
                raise RegistryError(
                    f"overlapping delegations at {format_ip(right.start)}"
                )
        self._trie = PrefixTrie()
        for index, record in enumerate(self._records):
            for prefix in record.prefixes():
                self._trie.insert(prefix, index)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DelegationRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[DelegationRecord]:
        return list(self._records)

    # -- lookup ------------------------------------------------------

    def lookup(self, ip: int) -> DelegationRecord | None:
        """The record whose range contains *ip*, or ``None``."""
        match = self._trie.lookup(ip)
        if match is None:
            return None
        return self._records[match[1]]

    def lookup_many(self, ips: np.ndarray) -> np.ndarray:
        """Record indexes (into :attr:`records`) per address; -1 if none."""
        return self._trie.lookup_many_int(ips, default=-1)

    def rir_of_many(self, ips: np.ndarray) -> list[RIR | None]:
        """Registry per address, aligned with input order."""
        indexes = self.lookup_many(ips)
        return [
            self._records[i].rir if i >= 0 else None for i in indexes
        ]

    def country_of_many(self, ips: np.ndarray) -> list[str | None]:
        """Country code per address, aligned with input order."""
        indexes = self.lookup_many(ips)
        return [
            self._records[i].country if i >= 0 else None for i in indexes
        ]

    def records_of(self, rir: RIR | None = None, country: str | None = None) -> list[DelegationRecord]:
        """Filter records by registry and/or country."""
        out = self._records
        if rir is not None:
            out = [record for record in out if record.rir == rir]
        if country is not None:
            out = [record for record in out if record.country == country.upper()]
        return list(out)

    def total_addresses(self, rir: RIR | None = None) -> int:
        """Number of delegated addresses, optionally for one registry."""
        return sum(
            record.count
            for record in self._records
            if rir is None or record.rir == rir
        )

    # -- serialisation -------------------------------------------------

    def to_lines(self) -> list[str]:
        """Serialise all records in NRO extended format."""
        return [record.to_line() for record in self._records]

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "DelegationTable":
        """Parse an NRO extended file (comments/summary lines skipped)."""
        records = []
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split("|")
            if len(fields) >= 3 and fields[2] != "ipv4":
                continue  # header, summary, asn or ipv6 record
            if len(fields) < 7:
                continue  # version/summary line
            records.append(DelegationRecord.from_line(stripped))
        return cls(records)


#: Share of the synthetic address space administered by each registry.
#: Loosely proportional to real-world delegated space.
RIR_SPACE_SHARES: dict[RIR, float] = {
    RIR.ARIN: 0.36,
    RIR.RIPE: 0.24,
    RIR.APNIC: 0.25,
    RIR.LACNIC: 0.10,
    RIR.AFRINIC: 0.05,
}


def synthesize_delegations(
    rng: np.random.Generator,
    num_slash8: int = 8,
    first_slash8: int = 1,
    min_masklen: int = 12,
    max_masklen: int = 16,
    reserved_fraction: float = 0.08,
) -> DelegationTable:
    """Carve ``num_slash8`` /8 blocks into a synthetic delegation table.

    Each /8 is assigned to one registry (respecting
    :data:`RIR_SPACE_SHARES` as closely as the integer count allows)
    and subdivided into CIDR allocations with masks drawn uniformly
    from ``[min_masklen, max_masklen]``.  Every allocation is tagged
    with a country of that registry, chosen with probability
    proportional to the country's total subscribers, and a plausible
    allocation date.  A small fraction of allocations is marked
    ``reserved`` to model unallocated space.
    """
    if num_slash8 < len(RIR_SPACE_SHARES):
        raise RegistryError(
            f"need at least {len(RIR_SPACE_SHARES)} /8s, got {num_slash8}"
        )
    if not 8 <= min_masklen <= max_masklen <= 24:
        raise RegistryError(
            f"bad mask range: /{min_masklen}../{max_masklen}"
        )

    # Apportion /8s to registries: one each, remainder by largest share.
    counts = {rir: 1 for rir in RIR_SPACE_SHARES}
    remaining = num_slash8 - len(counts)
    weights = np.array([RIR_SPACE_SHARES[rir] for rir in RIR_SPACE_SHARES])
    extra = rng.multinomial(remaining, weights / weights.sum())
    for rir, extra_count in zip(RIR_SPACE_SHARES, extra):
        counts[rir] += int(extra_count)

    slash8_owners: list[RIR] = []
    for rir, count in counts.items():
        slash8_owners.extend([rir] * count)
    rng.shuffle(slash8_owners)  # type: ignore[arg-type]

    records: list[DelegationRecord] = []
    for offset, rir in enumerate(slash8_owners):
        base = (first_slash8 + offset) << 24
        country_pool = countries_of(rir)
        subscriber_mass = np.array(
            [country.broadband_subs + country.cellular_subs / 10 for country in country_pool]
        )
        country_weights = subscriber_mass / subscriber_mass.sum()
        cursor = base
        end = base + (1 << 24)
        while cursor < end:
            masklen = int(rng.integers(min_masklen, max_masklen + 1))
            size = 1 << (32 - masklen)
            # Re-align if the draw would overshoot the /8.
            size = min(size, end - cursor)
            country = country_pool[int(rng.choice(len(country_pool), p=country_weights))]
            status = "reserved" if rng.random() < reserved_fraction else "allocated"
            year = int(rng.integers(1995, 2015))
            date = datetime.date(year, int(rng.integers(1, 13)), int(rng.integers(1, 28)))
            records.append(
                DelegationRecord(
                    rir=rir,
                    country=country.code,
                    start=cursor,
                    count=size,
                    date=date,
                    status=status,
                )
            )
            cursor += size
    return DelegationTable(records)


def country_parameters(code: str) -> Country:
    """Convenience re-export: behavioural parameters for a country."""
    for country in COUNTRIES:
        if country.code == code.upper():
            return country
    raise RegistryError(f"unknown country code: {code!r}")
