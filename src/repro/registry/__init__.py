"""Registry substrate: RIRs, countries, and delegation tables.

Stands in for the RIRs' extended allocation files and the ITU
subscriber statistics the paper uses to geolocate addresses (Sec. 3.4)
and to contextualise regional demographics (Sec. 7.2).
"""

from repro.registry.countries import (
    COUNTRIES,
    Country,
    broadband_ranks,
    cellular_ranks,
    countries_of,
    get_country,
    spearman_rank_correlation,
)
from repro.registry.delegations import (
    ACTIVE_STATUSES,
    RIR_SPACE_SHARES,
    DelegationRecord,
    DelegationTable,
    synthesize_delegations,
)
from repro.registry.rir import (
    EXHAUSTION_DATES,
    IANA_EXHAUSTION,
    INCORPORATION_YEARS,
    RIR,
    exhausted_by,
    exhaustion_timeline,
)

__all__ = [
    "ACTIVE_STATUSES",
    "COUNTRIES",
    "Country",
    "DelegationRecord",
    "DelegationTable",
    "EXHAUSTION_DATES",
    "IANA_EXHAUSTION",
    "INCORPORATION_YEARS",
    "RIR",
    "RIR_SPACE_SHARES",
    "broadband_ranks",
    "cellular_ranks",
    "countries_of",
    "exhausted_by",
    "exhaustion_timeline",
    "get_country",
    "spearman_rank_correlation",
    "synthesize_delegations",
]
