"""Regional Internet Registries (RIRs).

The five RIRs administer IPv4 address delegation for their regions.
The paper (Sec. 2, Fig. 1) annotates the activity time series with each
registry's exhaustion date — the day the registry's free pool of
general-purpose IPv4 space ran out — and breaks demographics down per
RIR (Figs. 3a and 12).  This module captures that reference data.
"""

from __future__ import annotations

import datetime
import enum

from repro.errors import RegistryError


class RIR(enum.Enum):
    """The five Regional Internet Registries."""

    ARIN = "arin"
    RIPE = "ripencc"
    APNIC = "apnic"
    LACNIC = "lacnic"
    AFRINIC = "afrinic"

    @classmethod
    def parse(cls, text: str) -> "RIR":
        """Parse an RIR name as it appears in NRO delegation files
        (``ripencc``) or in common usage (``RIPE``)."""
        normalised = text.strip().lower()
        aliases = {
            "arin": cls.ARIN,
            "ripencc": cls.RIPE,
            "ripe": cls.RIPE,
            "ripe ncc": cls.RIPE,
            "apnic": cls.APNIC,
            "lacnic": cls.LACNIC,
            "afrinic": cls.AFRINIC,
        }
        if normalised not in aliases:
            raise RegistryError(f"unknown RIR: {text!r}")
        return aliases[normalised]

    def __str__(self) -> str:
        return self.name


#: Date on which IANA's central free pool was exhausted (the final /8s
#: were handed to the RIRs).
IANA_EXHAUSTION = datetime.date(2011, 2, 3)

#: Date each RIR reached exhaustion of its general-purpose IPv4 pool
#: (entered its last-/8 or equivalent austerity policy).  AFRINIC had
#: not exhausted during the paper's measurement period, hence ``None``.
EXHAUSTION_DATES: dict[RIR, datetime.date | None] = {
    RIR.APNIC: datetime.date(2011, 4, 15),
    RIR.RIPE: datetime.date(2012, 9, 14),
    RIR.LACNIC: datetime.date(2014, 6, 10),
    RIR.ARIN: datetime.date(2015, 9, 24),
    RIR.AFRINIC: None,
}

#: Year each registry was incorporated.  LACNIC (2002) and AFRINIC
#: (2005) were founded late, with address conservation as a goal from
#: the start — the paper's suggested explanation for their higher
#: utilization (Sec. 7.2).
INCORPORATION_YEARS: dict[RIR, int] = {
    RIR.ARIN: 1997,
    RIR.RIPE: 1992,
    RIR.APNIC: 1993,
    RIR.LACNIC: 2002,
    RIR.AFRINIC: 2005,
}


def exhausted_by(date: datetime.date) -> list[RIR]:
    """RIRs whose free pool was exhausted on or before *date*."""
    return [
        rir
        for rir, when in EXHAUSTION_DATES.items()
        if when is not None and when <= date
    ]


def exhaustion_timeline() -> list[tuple[datetime.date, str]]:
    """The (date, label) annotations of Fig. 1, in chronological order."""
    events: list[tuple[datetime.date, str]] = [(IANA_EXHAUSTION, "IANA exhaustion")]
    for rir, when in EXHAUSTION_DATES.items():
        if when is not None:
            events.append((when, f"{rir.name} exhaustion"))
    events.sort()
    return events
