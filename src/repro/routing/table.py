"""Routing-table snapshots.

A :class:`RoutingTable` models one daily RIB snapshot from a route
collector (the paper uses a RouteViews collector in AS6539): a mapping
from announced prefixes to origin AS numbers, with longest-prefix-match
address attribution and an exact diff against another snapshot.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import RoutingError
from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.routing.events import BGPChange, ChangeKind


class RoutingTable:
    """A prefix → origin-AS snapshot with longest-prefix-match lookup."""

    def __init__(self, routes: Iterable[tuple[Prefix, int]] = ()) -> None:
        self._routes: dict[Prefix, int] = {}
        self._trie = PrefixTrie()
        for prefix, origin in routes:
            self.announce(prefix, origin)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __iter__(self) -> Iterator[tuple[Prefix, int]]:
        return iter(sorted(self._routes.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingTable):
            return NotImplemented
        return self._routes == other._routes

    def __repr__(self) -> str:
        return f"RoutingTable({len(self)} prefixes, {len(self.origins())} origins)"

    # -- mutation ------------------------------------------------------

    def announce(self, prefix: Prefix, origin: int) -> None:
        """Insert or move a route.  Origin must be a positive AS number."""
        if not isinstance(origin, (int, np.integer)) or isinstance(origin, bool) or origin <= 0:
            raise RoutingError(f"bad origin AS: {origin!r}")
        self._routes[prefix] = int(origin)
        self._trie.insert(prefix, int(origin))

    def withdraw(self, prefix: Prefix) -> None:
        """Remove a route; raises if the prefix is not announced."""
        if prefix not in self._routes:
            raise RoutingError(f"prefix not announced: {prefix}")
        del self._routes[prefix]
        self._trie.remove(prefix)

    def copy(self) -> "RoutingTable":
        """An independent copy (used to evolve daily snapshots)."""
        clone = RoutingTable()
        for prefix, origin in self._routes.items():
            clone.announce(prefix, origin)
        return clone

    # -- lookup --------------------------------------------------------

    def origin_of(self, ip: int) -> int | None:
        """Origin AS of the longest matching prefix, or ``None``."""
        match = self._trie.lookup(ip)
        return None if match is None else match[1]

    def origin_of_many(self, ips: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`origin_of`; -1 where unrouted."""
        return self._trie.lookup_many_int(ips, default=-1)

    def matching_prefix(self, ip: int) -> Prefix | None:
        """The longest announced prefix covering *ip*."""
        match = self._trie.lookup(ip)
        if match is None:
            return None
        # The trie returns the matched mask on the queried address;
        # recover the announced prefix object itself.
        return Prefix.from_ip(ip, match[0].masklen)

    def origin_of_prefix(self, prefix: Prefix) -> int | None:
        """Exact-match origin for an announced prefix."""
        return self._routes.get(prefix)

    def prefixes(self) -> list[Prefix]:
        """All announced prefixes in address order."""
        return sorted(self._routes)

    def origins(self) -> set[int]:
        """The set of origin AS numbers present in the table."""
        return set(self._routes.values())

    def advertised_addresses(self) -> int:
        """Total address count covered by announced prefixes.

        Covering prefixes are not double-counted: more-specific
        announcements inside a covering announcement add nothing.
        """
        from repro.net.sets import IPSet

        return len(IPSet.from_prefixes(self._routes))

    # -- diffing ---------------------------------------------------------

    def diff(self, later: "RoutingTable") -> list[BGPChange]:
        """Changes needed to turn this snapshot into *later*.

        Returns announce / withdraw / origin-change events, sorted by
        prefix, matching the paper's definition of a "BGP change".
        """
        changes: list[BGPChange] = []
        for prefix, origin in self._routes.items():
            new_origin = later._routes.get(prefix)
            if new_origin is None:
                changes.append(
                    BGPChange(prefix, ChangeKind.WITHDRAW, origin, None)
                )
            elif new_origin != origin:
                changes.append(
                    BGPChange(prefix, ChangeKind.ORIGIN_CHANGE, origin, new_origin)
                )
        for prefix, origin in later._routes.items():
            if prefix not in self._routes:
                changes.append(BGPChange(prefix, ChangeKind.ANNOUNCE, None, origin))
        changes.sort(key=lambda change: change.prefix)
        return changes
