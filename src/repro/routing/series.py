"""Daily routing-table series.

The paper attributes each active address to its origin AS using daily
RIB snapshots, and — for multi-day windows — a *majority vote* over the
window's daily IP→AS mappings (footnote 6).  It then asks, for each
address with an up/down event between two windows, whether the
covering route changed between those windows (Fig. 5c, Table 2).

:class:`RoutingSeries` holds one table per day and implements both the
majority-vote attribution and the changed-address test.
"""

from __future__ import annotations


from collections.abc import Sequence

import numpy as np

from repro.errors import RoutingError
from repro.net.sets import IPSet
from repro.routing.events import BGPChange, ChangeKind
from repro.routing.table import RoutingTable


class RoutingSeries:
    """A sequence of daily routing-table snapshots (day 0, 1, 2, ...)."""

    def __init__(self, tables: Sequence[RoutingTable]) -> None:
        if not tables:
            raise RoutingError("a routing series needs at least one snapshot")
        self._tables = list(tables)

    def __len__(self) -> int:
        return len(self._tables)

    def table_at(self, day: int) -> RoutingTable:
        """The snapshot for a given day index."""
        if not 0 <= day < len(self._tables):
            raise RoutingError(f"day {day} outside series of {len(self._tables)}")
        return self._tables[day]

    # -- attribution -----------------------------------------------------

    def origin_at(self, day: int, ip: int) -> int | None:
        """Origin AS of *ip* on a single day."""
        return self.table_at(day).origin_of(ip)

    def majority_origin_many(
        self, ips: np.ndarray, first_day: int, last_day: int
    ) -> np.ndarray:
        """Majority-vote origin AS per address over ``[first_day, last_day]``.

        This mirrors the paper's footnote 6: "for larger window sizes,
        we determine the origin AS for a given IP address using a
        majority vote of all contained daily IP-to-AS mappings".
        Returns -1 where an address is unrouted on a majority of days.
        """
        if first_day > last_day:
            raise RoutingError(f"empty window: {first_day}..{last_day}")
        arr = np.asarray(ips, dtype=np.uint32)
        if arr.size == 0:
            return np.empty(0, dtype=np.int64)
        # Consecutive days usually share the same table object (the
        # series only forks on change); vote each distinct table once,
        # weighted by how many days it covers.
        weights: dict[int, int] = {}
        tables: dict[int, "RoutingTable"] = {}
        for day in range(first_day, last_day + 1):
            table = self.table_at(day)
            key = id(table)
            weights[key] = weights.get(key, 0) + 1
            tables[key] = table
        votes = np.stack([tables[key].origin_of_many(arr) for key in tables])
        vote_weights = np.array([weights[key] for key in tables], dtype=np.int64)
        # Weighted mode per column, vectorised over the (few) distinct
        # tables: score each row's value by the total weight of rows
        # agreeing with it, then take the best-scoring row's value.
        num_tables = votes.shape[0]
        scores = np.zeros_like(votes)
        for row in range(num_tables):
            agreement = votes == votes[row]
            scores += vote_weights[row] * agreement
        best_rows = np.argmax(scores, axis=0)
        return votes[best_rows, np.arange(arr.size)]

    # -- change detection --------------------------------------------------

    def changes_between(self, first_day: int, last_day: int) -> list[BGPChange]:
        """Net route changes between two daily snapshots.

        Diffs the *endpoint* tables; a prefix that flapped and returned
        to its original origin counts as unchanged, which is the
        conservative reading used for the "is churn visible in BGP?"
        question.
        """
        return self.table_at(first_day).diff(self.table_at(last_day))

    def changes_within(self, first_day: int, last_day: int) -> list[BGPChange]:
        """Union of day-over-day changes inside ``[first_day, last_day]``.

        Unlike :meth:`changes_between`, transient flaps are included.
        """
        if first_day > last_day:
            raise RoutingError(f"empty window: {first_day}..{last_day}")
        seen: dict[tuple, BGPChange] = {}
        for day in range(first_day, last_day):
            for change in self._tables[day].diff(self._tables[day + 1]):
                key = (change.prefix, change.kind, change.old_origin, change.new_origin)
                seen.setdefault(key, change)
        return sorted(seen.values(), key=lambda change: change.prefix)

    def changed_address_space(self, first_day: int, last_day: int) -> IPSet:
        """All addresses covered by any route change between the two days."""
        prefixes = [change.prefix for change in self.changes_between(first_day, last_day)]
        return IPSet.from_prefixes(prefixes)

    def change_mask(
        self, ips: np.ndarray, first_day: int, last_day: int
    ) -> np.ndarray:
        """Boolean per address: did a covering route change between the days?

        This is the primitive behind Fig. 5c — up/down events are
        intersected with this mask to measure what fraction of churn is
        visible in the global routing table.
        """
        return self.changed_address_space(first_day, last_day).contains_many(
            np.asarray(ips, dtype=np.int64)
        )

    def change_kind_of_many(
        self, ips: np.ndarray, first_day: int, last_day: int
    ) -> list[ChangeKind | None]:
        """Per address, the kind of covering route change (or ``None``).

        Used for the Table 2 rows that split appear/disappear events
        into "BGP no change" / "origin change" / "announce-withdraw".
        If several changed prefixes cover the same address, the most
        specific one wins.
        """
        changes = self.changes_between(first_day, last_day)
        from repro.net.trie import PrefixTrie

        trie = PrefixTrie()
        # Insert shorter masks first so longer masks override on lookup.
        for change in sorted(changes, key=lambda change: change.prefix.masklen):
            trie.insert(change.prefix, change.kind)
        return trie.lookup_many(np.asarray(ips, dtype=np.uint32), default=None)
