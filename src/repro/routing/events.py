"""BGP change events.

The paper (Sec. 4.2, Fig. 5c and Table 2) considers three kinds of
routing-table change relevant to address activity: a prefix being newly
announced, a prefix being withdrawn, and a prefix changing origin AS.
Everything else (path changes, communities, ...) is invisible at the
granularity of daily RIB snapshots and is out of scope, exactly as in
the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import RoutingError
from repro.net.prefix import Prefix


class ChangeKind(enum.Enum):
    """The three route-change categories of the paper."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"
    ORIGIN_CHANGE = "origin_change"


@dataclass(frozen=True)
class BGPChange:
    """One routing-table difference between two snapshots.

    ``old_origin``/``new_origin`` are AS numbers; ``None`` marks the
    absent side of an announce/withdraw.
    """

    prefix: Prefix
    kind: ChangeKind
    old_origin: int | None
    new_origin: int | None

    def __post_init__(self) -> None:
        if self.kind is ChangeKind.ANNOUNCE and self.old_origin is not None:
            raise RoutingError("announce must have old_origin=None")
        if self.kind is ChangeKind.WITHDRAW and self.new_origin is not None:
            raise RoutingError("withdraw must have new_origin=None")
        if self.kind is ChangeKind.ORIGIN_CHANGE and (
            self.old_origin is None
            or self.new_origin is None
            or self.old_origin == self.new_origin
        ):
            raise RoutingError("origin change must have two distinct origins")

    def __str__(self) -> str:
        if self.kind is ChangeKind.ANNOUNCE:
            return f"{self.prefix} announced by AS{self.new_origin}"
        if self.kind is ChangeKind.WITHDRAW:
            return f"{self.prefix} withdrawn (was AS{self.old_origin})"
        return f"{self.prefix} moved AS{self.old_origin} -> AS{self.new_origin}"
