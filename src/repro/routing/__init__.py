"""Routing substrate: BGP snapshots, diffs, and daily series.

Stands in for the RouteViews RIB snapshots the paper uses to attribute
addresses to origin ASes and to test whether address churn is visible
in the global routing table (Sec. 4.2–4.3).
"""

from repro.routing.events import BGPChange, ChangeKind
from repro.routing.series import RoutingSeries
from repro.routing.table import RoutingTable

__all__ = ["BGPChange", "ChangeKind", "RoutingSeries", "RoutingTable"]
