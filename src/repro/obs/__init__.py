"""Observability for the collection/analysis pipeline.

A dependency-free subsystem that makes a run *auditable*: hierarchical
timing spans (wall/CPU time, peak RSS), typed counters and gauges with
cross-process merge semantics, an ordered event log, a per-run manifest
written atomically next to the dataset, and exporters to JSON and
Prometheus text format.

The central object is the :class:`ObsContext` — picklable and
mergeable, so each worker process records its own and the coordinator
folds them into one run-wide view whose totals reconcile exactly with
the engine's :class:`~repro.sim.engine.PerfCounters`.  Library code is
instrumented through the ambient-context helpers (:func:`span`,
:func:`add`, :func:`gauge`, :func:`event`), which are no-ops until a
context is :func:`activate`\\ d — observability off means near-zero
cost.

Typical use (what ``repro simulate --trace-out`` does)::

    from repro import obs

    ctx = obs.ObsContext()
    with obs.activate(ctx):
        result = observatory.collect_daily(28, workers=4, obs=ctx)
    manifest = obs.build_manifest(ctx, dataset=result.dataset)
    obs.write_manifest("world.manifest.json", manifest)
    print(obs.to_prometheus(ctx))
"""

from repro.obs.context import (
    ObsContext,
    RunEvent,
    activate,
    active,
    add,
    event,
    gauge,
    maybe_activate,
    span,
)
from repro.obs.counters import MetricSet, validate_metric_name
from repro.obs.export import (
    to_prometheus,
    to_trace_json,
    write_prometheus,
    write_trace_json,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    dataset_digest,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.spans import SpanRecorder, SpanStats, peak_rss_bytes

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MetricSet",
    "ObsContext",
    "RunEvent",
    "RunManifest",
    "SpanRecorder",
    "SpanStats",
    "activate",
    "active",
    "add",
    "build_manifest",
    "dataset_digest",
    "event",
    "gauge",
    "load_manifest",
    "manifest_path_for",
    "maybe_activate",
    "peak_rss_bytes",
    "span",
    "to_prometheus",
    "to_trace_json",
    "validate_metric_name",
    "write_manifest",
    "write_prometheus",
    "write_trace_json",
]
