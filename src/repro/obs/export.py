"""Exporters: one observation context, two wire formats.

- :func:`to_trace_json` renders the span tree, counters, gauges,
  events, and run info as indented JSON — the ``--trace-out`` artifact
  a human (or a diffing script) reads after a run.
- :func:`to_prometheus` renders the same context in the Prometheus
  text exposition format, so a scraping stack ingests a run's metrics
  without any repro-specific glue.  Counters are suffixed ``_total``
  (the Prometheus convention), gauges keep their names, and span
  aggregates are exported as labelled families
  (``repro_span_wall_seconds{span="collect/shard/simulate"}``).

Both exporters are pure functions of the context — they can run
mid-collection (the ``--progress`` heartbeat path) or after the fact on
a merged context.  The :func:`write_trace_json` / :func:`write_prometheus`
companions put the rendered text on disk through the fsynced
atomic-write path of :mod:`repro.core.io`, so an exported trace obeys
the same crash-safety contract as the dataset it describes.
"""

from __future__ import annotations

import json
import os

from repro.obs.context import ObsContext


def to_trace_json(ctx: ObsContext) -> str:
    """The ``--trace-out`` artifact: spans + metrics + events as JSON."""
    payload = {
        "info": dict(ctx.info),
        "spans": ctx.spans.tree(),
        "counters": ctx.metrics.counters,
        "gauges": ctx.metrics.gauges,
        "events": [event.as_dict() for event in ctx.events],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _escape_label_value(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: int | float) -> str:
    """Prometheus sample values: integers stay integral."""
    if isinstance(value, bool):
        # bool passes isinstance(..., int); "True"/"False" is not a
        # valid exposition-format sample value.
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(ctx: ObsContext, prefix: str = "repro") -> str:
    """The ``--metrics-out`` artifact: Prometheus text exposition format."""
    lines: list[str] = []

    for name in sorted(ctx.metrics.counters):
        value = ctx.metrics.counters[name]
        full = f"{prefix}_{name}"
        if not full.endswith("_total"):
            full += "_total"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_format_value(value)}")

    for name in sorted(ctx.metrics.gauges):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_format_value(ctx.metrics.gauges[name])}")

    span_payload = ctx.spans.as_dict()
    if span_payload:
        families = (
            ("span_wall_seconds", "gauge", "wall_seconds"),
            ("span_cpu_seconds", "gauge", "cpu_seconds"),
            ("span_peak_rss_bytes", "gauge", "peak_rss_bytes"),
            ("span_calls_total", "counter", "count"),
        )
        for family, kind, key in families:
            full = f"{prefix}_{family}"
            lines.append(f"# TYPE {full} gauge" if kind == "gauge" else
                         f"# TYPE {full} counter")
            for path in sorted(span_payload):
                label = _escape_label_value(path)
                lines.append(
                    f'{full}{{span="{label}"}} '
                    f"{_format_value(span_payload[path][key])}"
                )

    return "\n".join(lines) + "\n"


def write_trace_json(path: str | os.PathLike[str], ctx: ObsContext) -> str:
    """Atomically write the JSON trace artifact; returns the path."""
    # Imported lazily: repro.core.io imports the obs package for its
    # span instrumentation, so a module-level import would be circular.
    from repro.core.io import atomic_write_text

    target = os.fspath(path)
    atomic_write_text(target, to_trace_json(ctx))
    return target


def write_prometheus(
    path: str | os.PathLike[str], ctx: ObsContext, prefix: str = "repro"
) -> str:
    """Atomically write the Prometheus text artifact; returns the path."""
    from repro.core.io import atomic_write_text

    target = os.fspath(path)
    atomic_write_text(target, to_prometheus(ctx, prefix=prefix))
    return target
