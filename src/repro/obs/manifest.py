"""Per-run manifests: the provenance record written next to a dataset.

Reproducible measurement pipelines live or die by run provenance — a
dataset whose config, code version, worker layout, and failure history
are unknown cannot be audited, compared, or trusted ("Lost in Space"
and the IPv6-classification literature both stress this).  A
:class:`RunManifest` captures exactly that for one collection run:

- **identity**: seed, worker count, shard map, horizon, window length,
  and the checkpoint fingerprint (when checkpointing was configured);
- **integrity**: a SHA-256 digest of the collected dataset's arrays
  (:func:`dataset_digest`), so drift between two runs — or between a
  run and its golden reference — is one string comparison;
- **history**: every retry/degrade/resume/checkpoint event the engine
  recorded, plus the merged counters, gauges, and span tree;
- **environment**: Python, numpy, and :mod:`repro` versions.

Manifests are JSON, written through the same fsynced atomic-write path
as datasets, so a crash mid-write can never leave a truncated manifest
beside a complete dataset.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ObservabilityError
from repro.obs.context import ObsContext

if TYPE_CHECKING:  # runtime import would be circular (core.io uses obs)
    from repro.core.dataset import ActivityDataset

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


def dataset_digest(dataset: "ActivityDataset") -> str:
    """SHA-256 of a dataset's header and every snapshot column.

    Covers the start date, window length, snapshot count, and each
    snapshot's IP/hit arrays (dtype and bytes), so two datasets share a
    digest iff they are bit-identical — the equality the golden-run
    regression test and the observability acceptance test pin down.
    """
    digest = hashlib.sha256()
    digest.update(
        f"v1|{dataset.start.toordinal()}|{dataset.window_days}|{len(dataset)}".encode()
    )
    for snapshot in dataset:
        for column in (snapshot.ips, snapshot.hits):
            array = np.ascontiguousarray(column)
            digest.update(f"|{array.dtype.str}|{array.size}|".encode())
            digest.update(array.tobytes())
    return digest.hexdigest()


@dataclass
class RunManifest:
    """Everything needed to audit one collection run."""

    schema: int = MANIFEST_SCHEMA_VERSION
    repro_version: str = ""
    python_version: str = ""
    numpy_version: str = ""
    seed: int | None = None
    workers: int | None = None
    num_days: int | None = None
    window_days: int | None = None
    num_blocks: int | None = None
    fingerprint: str | None = None
    shard_map: list[list[int]] | None = None
    dataset_path: str | None = None
    dataset_sha256: str | None = None
    events: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    spans: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "versions": {
                "repro": self.repro_version,
                "python": self.python_version,
                "numpy": self.numpy_version,
            },
            "run": {
                "seed": self.seed,
                "workers": self.workers,
                "num_days": self.num_days,
                "window_days": self.window_days,
                "num_blocks": self.num_blocks,
                "fingerprint": self.fingerprint,
                "shard_map": self.shard_map,
            },
            "dataset": {
                "path": self.dataset_path,
                "sha256": self.dataset_sha256,
            },
            "events": list(self.events),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": self.spans,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"


def build_manifest(
    ctx: ObsContext,
    dataset: "ActivityDataset | None" = None,
    dataset_path: str | os.PathLike[str] | None = None,
    dataset_sha256: str | None = None,
) -> RunManifest:
    """Assemble a manifest from a run's observation context.

    The run-identity fields come from ``ctx.info`` (recorded by the
    collection engine); passing the collected *dataset* additionally
    stamps its SHA-256 digest.  When the dataset was never materialized
    — an out-of-core store run — pass *dataset_sha256* directly: the
    store's streamed digest hashes the identical byte stream, so the
    manifest field is comparable across both layouts.
    """
    import repro

    info = ctx.info
    return RunManifest(
        repro_version=repro.__version__,
        python_version=platform.python_version(),
        numpy_version=np.__version__,
        seed=info.get("seed"),
        workers=info.get("workers"),
        num_days=info.get("num_days"),
        window_days=info.get("window_days"),
        num_blocks=info.get("num_blocks"),
        fingerprint=info.get("fingerprint"),
        shard_map=info.get("shard_map"),
        dataset_path=None if dataset_path is None else os.fspath(dataset_path),
        dataset_sha256=dataset_sha256 if dataset is None else dataset_digest(dataset),
        events=[event.as_dict() for event in ctx.events],
        # Copies, not references: the context stays live after the
        # manifest is built (the serve loop builds one per interval),
        # and a manifest must be a snapshot, not a view.
        counters=dict(ctx.metrics.counters),
        gauges=dict(ctx.metrics.gauges),
        spans=ctx.spans.tree(),
    )


def manifest_path_for(dataset_path: str | os.PathLike[str]) -> str:
    """Canonical manifest location next to a dataset file."""
    text = os.fspath(dataset_path)
    if text.endswith(".npz"):
        text = text[: -len(".npz")]
    return text + ".manifest.json"


def write_manifest(path: str | os.PathLike[str], manifest: RunManifest) -> str:
    """Atomically write *manifest* as JSON; returns the path written."""
    # Imported lazily: repro.core.io imports the obs package for its
    # span instrumentation, so a module-level import would be circular.
    from repro.core.io import atomic_write_text

    target = os.fspath(path)
    atomic_write_text(target, manifest.to_json())
    return target


def load_manifest(path: str | os.PathLike[str]) -> dict[str, Any]:
    """Read a manifest back as a plain dict; validates the schema."""
    target = os.fspath(path)
    try:
        with open(target, encoding="utf-8") as stream:
            payload: dict[str, Any] = json.load(stream)
    except FileNotFoundError as exc:
        raise ObservabilityError(f"no manifest file at: {target}") from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"corrupt manifest file: {target} ({exc})"
        ) from exc
    except OSError as exc:
        raise ObservabilityError(
            f"unreadable manifest file: {target} ({exc})"
        ) from exc
    schema = payload.get("schema")
    if schema != MANIFEST_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported manifest schema {schema!r} in {target}"
        )
    return payload
