"""Hierarchical timing spans: where a run's time and memory go.

A **span** is a named region of execution — ``collect/shard/simulate``,
``io/save_dataset`` — recorded with wall-clock time, CPU time, and the
process's peak RSS observed while the span was open.  Span names form a
slash-separated hierarchy; opening a span inside another nests it under
the enclosing path, so instrumented library code composes into one tree
no matter which layer opened the outer span.

Spans aggregate rather than trace: two executions of the same path fold
into one :class:`SpanStats` (summed times, summed count, max RSS), so a
year-long collection run produces a bounded structure, not a log.  The
same fold implements the cross-process merge — a worker ships its
recorder as a plain dict (:meth:`SpanRecorder.as_dict`) and the
coordinator folds it in with :meth:`SpanRecorder.merge` — which is what
makes a ``workers=8`` run's span tree comparable to a serial run's.

Everything here is dependency-free and single-threaded by design: the
coordinator records on one thread and worker processes each record into
their own recorder.
"""

from __future__ import annotations

import re
import sys
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.errors import ObservabilityError

try:  # pragma: no cover - resource is present on every POSIX platform
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None  # type: ignore[assignment]

#: Span path segments: one or more printable name characters; segments
#: are joined by ``/`` and must not be empty.
_SEGMENT_RE = re.compile(r"[A-Za-z0-9_.:-]+$")


def peak_rss_bytes() -> int:
    """The process's lifetime peak resident set size, in bytes.

    Returns 0 on platforms without :mod:`resource`.  ``ru_maxrss`` is
    kilobytes on Linux and bytes on macOS; both are normalised to bytes.
    """
    if _resource is None:  # pragma: no cover - Windows
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


def validate_span_name(name: str) -> None:
    """Reject empty or malformed span paths with a clear error."""
    if not name or any(not _SEGMENT_RE.match(part) for part in name.split("/")):
        raise ObservabilityError(
            f"bad span name {name!r}: use non-empty [A-Za-z0-9_.:-] segments "
            "joined by '/'"
        )


@dataclass
class SpanStats:
    """Aggregated statistics of every execution of one span path."""

    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_rss_bytes: int = 0

    def merge(self, other: "SpanStats") -> None:
        """Fold *other* into this: times and counts sum, RSS maxes."""
        self.count += other.count
        self.wall_seconds += other.wall_seconds
        self.cpu_seconds += other.cpu_seconds
        self.peak_rss_bytes = max(self.peak_rss_bytes, other.peak_rss_bytes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_rss_bytes": self.peak_rss_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanStats":
        return cls(
            count=int(payload["count"]),
            wall_seconds=float(payload["wall_seconds"]),
            cpu_seconds=float(payload["cpu_seconds"]),
            peak_rss_bytes=int(payload["peak_rss_bytes"]),
        )


class SpanRecorder:
    """Records a tree of timing spans for one process.

    >>> rec = SpanRecorder()
    >>> with rec.span("collect"):
    ...     with rec.span("shard"):
    ...         pass
    >>> sorted(rec.paths())
    ['collect', 'collect/shard']
    """

    def __init__(self) -> None:
        self._stack: list[str] = []
        self._stats: dict[str, SpanStats] = {}

    def __len__(self) -> int:
        return len(self._stats)

    def paths(self) -> list[str]:
        """Every recorded span path, in sorted order."""
        return sorted(self._stats)

    def stats(self, path: str) -> SpanStats:
        """The aggregated stats of one span path; raises if unrecorded."""
        try:
            return self._stats[path]
        except KeyError:
            raise ObservabilityError(f"no span recorded at {path!r}") from None

    @contextmanager
    def span(self, name: str) -> Iterator["SpanRecorder"]:
        """Time a region under *name*, nested below any open span.

        *name* may itself be a slash path (``collect/shard/simulate``),
        which records exactly that hierarchy in one call.
        """
        validate_span_name(name)
        path = "/".join(self._stack + [name]) if self._stack else name
        self._stack.append(name)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield self
        finally:
            self._stack.pop()
            delta = SpanStats(
                count=1,
                wall_seconds=time.perf_counter() - wall_start,
                cpu_seconds=time.process_time() - cpu_start,
                peak_rss_bytes=peak_rss_bytes(),
            )
            self._record(path, delta)

    def _record(self, path: str, delta: SpanStats) -> None:
        stats = self._stats.get(path)
        if stats is None:
            self._stats[path] = delta
        else:
            stats.merge(delta)

    # -- merge / serialization (the worker boundary) -------------------

    def merge(self, other: "SpanRecorder") -> None:
        """Fold another recorder's aggregates into this one."""
        for path, stats in other._stats.items():
            self._record(path, SpanStats(**stats.as_dict()))

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """Flat ``{path: stats}`` payload — picklable, JSON-ready."""
        return {path: self._stats[path].as_dict() for path in self.paths()}

    @classmethod
    def from_dict(cls, payload: dict[str, dict[str, Any]]) -> "SpanRecorder":
        recorder = cls()
        for path, stats in payload.items():
            validate_span_name(path)
            recorder._stats[path] = SpanStats.from_dict(stats)
        return recorder

    def tree(self) -> dict[str, Any]:
        """The span hierarchy as nested dicts (the ``--trace-out`` shape).

        Every node carries its own aggregated stats plus a ``children``
        mapping keyed by path segment.  Interior paths that were never
        themselves opened as spans appear with zeroed stats.
        """
        root: dict[str, Any] = {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0,
                                "peak_rss_bytes": 0, "children": {}}
        for path in self.paths():
            node = root
            for segment in path.split("/"):
                node = node["children"].setdefault(
                    segment,
                    {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0,
                     "peak_rss_bytes": 0, "children": {}},
                )
            stats = self._stats[path]
            node["count"] = stats.count
            node["wall_seconds"] = stats.wall_seconds
            node["cpu_seconds"] = stats.cpu_seconds
            node["peak_rss_bytes"] = stats.peak_rss_bytes
        return root
