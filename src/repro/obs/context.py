"""The observation context: one object that crosses the worker boundary.

An :class:`ObsContext` bundles everything the observability layer
records about a run — the span tree, the counter/gauge set, an ordered
event log, and a small ``info`` mapping of run identity (seed, worker
count, shard map, fingerprint).  It is:

- **picklable**: :meth:`ObsContext.to_payload` flattens it to plain
  dicts and lists, which is what a worker ships back inside its
  :class:`~repro.sim.engine.ShardResult`;
- **mergeable**: :meth:`ObsContext.merge` folds another context (or a
  payload) in with the per-kind semantics of its parts — spans and
  counters sum, gauges max, events concatenate, info unions.

The module also provides the *ambient* context used by instrumented
library code (:func:`span`, :func:`add`, :func:`gauge`,
:func:`event`): a process-global slot installed with
:func:`activate`.  When no context is active every helper is a no-op,
so instrumentation in hot paths costs one attribute check when
observability is off.  The slot is per process — worker processes never
inherit the coordinator's context; they build their own and ship it
back explicitly.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import AbstractContextManager, contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.obs.counters import MetricSet, SupportsAsDict
from repro.obs.spans import SpanRecorder


@dataclass(frozen=True)
class RunEvent:
    """One discrete occurrence in a run (a retry, a checkpoint, ...).

    ``kind`` is a short identifier (``retry``, ``degrade``, ``resume``,
    ``checkpoint_save``, ``checkpoint_skip``); ``fields`` carries
    JSON-safe detail such as the shard index or attempt number.
    """

    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, **self.fields}


class ObsContext:
    """Spans + metrics + events + run identity for one collection/analysis."""

    def __init__(self) -> None:
        self.spans = SpanRecorder()
        self.metrics = MetricSet()
        self.events: list[RunEvent] = []
        #: Run identity recorded by the engine (seed, workers, shard
        #: map, fingerprint, ...) and consumed by the manifest.
        self.info: dict[str, Any] = {}

    # -- recording -----------------------------------------------------

    def span(self, name: str) -> AbstractContextManager[SpanRecorder]:
        """Context manager timing *name* (see :class:`SpanRecorder`)."""
        return self.spans.span(name)

    def add(self, name: str, amount: int | float = 1) -> None:
        self.metrics.add(name, amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        self.metrics.set_gauge(name, value)

    def event(self, kind: str, **fields: Any) -> None:
        """Append an event and bump its ``event_<kind>_total`` counter.

        The automatic counter gives every event kind a mergeable total,
        which is how the engine's resilience bookkeeping
        (retried/degraded/resumed/checkpointed) stays reconcilable with
        the returned :class:`~repro.sim.engine.PerfCounters`.
        """
        self.events.append(RunEvent(kind, dict(fields)))
        self.metrics.add(f"event_{kind}_total")

    def events_of(self, kind: str) -> list[RunEvent]:
        """Recorded events of one kind, in record order."""
        return [e for e in self.events if e.kind == kind]

    # -- merge / serialization (the worker boundary) -------------------

    def merge(self, other: "ObsContext") -> None:
        """Fold *other* in: spans/counters sum, gauges max, events append."""
        self.spans.merge(other.spans)
        self.metrics.merge(other.metrics)
        self.events.extend(other.events)
        self.info.update(other.info)

    def merge_payload(self, payload: dict[str, Any]) -> None:
        """Fold a :meth:`to_payload` dict in (the cross-process path)."""
        self.merge(ObsContext.from_payload(payload))

    def to_payload(self) -> dict[str, Any]:
        """Flatten to plain dicts/lists — picklable and JSON-ready."""
        return {
            "spans": self.spans.as_dict(),
            "metrics": self.metrics.as_dict(),
            "events": [event.as_dict() for event in self.events],
            "info": dict(self.info),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ObsContext":
        ctx = cls()
        ctx.spans = SpanRecorder.from_dict(payload.get("spans", {}))
        ctx.metrics = MetricSet.from_dict(payload.get("metrics", {}))
        for entry in payload.get("events", ()):
            fields = {key: value for key, value in entry.items() if key != "kind"}
            ctx.events.append(RunEvent(entry["kind"], fields))
        ctx.info = dict(payload.get("info", {}))
        return ctx

    def absorb_perf_counters(self, perf: SupportsAsDict) -> None:
        """Mirror the engine's per-run summary into ``collect_*`` gauges."""
        self.metrics.absorb_perf_counters(perf)


# -- the ambient context (module-level instrumentation API) ------------

_ACTIVE: ObsContext | None = None


def active() -> ObsContext | None:
    """The context instrumented library code currently records into."""
    return _ACTIVE


@contextmanager
def activate(ctx: ObsContext) -> Iterator[ObsContext]:
    """Install *ctx* as the ambient context for the enclosed block.

    Re-entrant: the previous context (possibly the same one) is
    restored on exit, so nested activations compose.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = previous


def maybe_activate(
    ctx: ObsContext | None,
) -> AbstractContextManager[ObsContext | None]:
    """``activate(ctx)`` when *ctx* is set, else a no-op context manager."""
    return activate(ctx) if ctx is not None else nullcontext()


def span(name: str) -> AbstractContextManager[SpanRecorder | None]:
    """Time *name* on the ambient context; no-op when none is active."""
    ctx = _ACTIVE
    return ctx.spans.span(name) if ctx is not None else nullcontext()


def add(name: str, amount: int | float = 1) -> None:
    """Bump a counter on the ambient context; no-op when none is active."""
    if _ACTIVE is not None:
        _ACTIVE.add(name, amount)


def gauge(name: str, value: int | float) -> None:
    """Set a gauge on the ambient context; no-op when none is active."""
    if _ACTIVE is not None:
        _ACTIVE.set_gauge(name, value)


def event(kind: str, **fields: Any) -> None:
    """Record an event on the ambient context; no-op when none is active."""
    if _ACTIVE is not None:
        _ACTIVE.event(kind, **fields)
