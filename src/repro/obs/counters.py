"""Typed counters and gauges with cross-process merge semantics.

A :class:`MetricSet` holds two kinds of metric, with deliberately
different merge behaviour:

- **counters** are monotonically accumulated totals (address-days
  simulated, shards retried).  Merging two sets *sums* counters, so the
  union of four worker payloads reports the same totals as one serial
  run — the property the observability merge tests pin down.
- **gauges** are point-in-time readings (worker count, wall seconds of
  a phase).  Merging takes the *max*, so replicated readings of the
  same quantity collapse instead of summing into nonsense.

The set absorbs the engine's :class:`~repro.sim.engine.PerfCounters`
(:meth:`MetricSet.absorb_perf_counters`), extending rather than
replacing it: ``PerfCounters`` stays the engine's return type, while
the metric set is the exported, mergeable view of the same numbers.

Names must match ``[a-zA-Z_][a-zA-Z0-9_]*`` so every metric is
exportable to Prometheus text format unmodified.
"""

from __future__ import annotations

import re
from typing import Any, Protocol

from repro.errors import ObservabilityError

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


class SupportsAsDict(Protocol):
    """Anything exposing a flat name-to-number view of itself.

    Structural stand-in for the engine's ``PerfCounters`` (importing it
    here would invert the layering: the engine depends on obs, not the
    other way around)."""

    def as_dict(self) -> dict[str, int | float]: ...


def validate_metric_name(name: str) -> None:
    """Reject names that could not be exported to Prometheus."""
    if not _METRIC_NAME_RE.match(name):
        raise ObservabilityError(
            f"bad metric name {name!r}: must match [a-zA-Z_][a-zA-Z0-9_]*"
        )


class MetricSet:
    """A named bag of counters (summed on merge) and gauges (maxed)."""

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, float] = {}

    # -- recording -----------------------------------------------------

    def add(self, name: str, amount: int | float = 1) -> None:
        """Increment counter *name* by *amount* (must be >= 0)."""
        validate_metric_name(name)
        if amount < 0:
            raise ObservabilityError(
                f"counter {name!r} cannot decrease (amount={amount})"
            )
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: int | float) -> None:
        """Set gauge *name* to *value* (overwrites)."""
        validate_metric_name(name)
        self._gauges[name] = float(value)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int | float:
        """Current value of a counter (0 if never incremented)."""
        validate_metric_name(name)
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Current value of a gauge (``None`` if never set)."""
        validate_metric_name(name)
        return self._gauges.get(name)

    @property
    def counters(self) -> dict[str, int | float]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    # -- merge / serialization -----------------------------------------

    def merge(self, other: "MetricSet") -> None:
        """Fold *other* in: counters sum, gauges take the max reading."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            current = self._gauges.get(name)
            self._gauges[name] = value if current is None else max(current, value)

    def as_dict(self) -> dict[str, Any]:
        return {"counters": dict(self._counters), "gauges": dict(self._gauges)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MetricSet":
        metrics = cls()
        for name, value in payload.get("counters", {}).items():
            validate_metric_name(name)
            metrics._counters[name] = value
        for name, value in payload.get("gauges", {}).items():
            validate_metric_name(name)
            metrics._gauges[name] = float(value)
        return metrics

    # -- PerfCounters absorption ---------------------------------------

    def absorb_perf_counters(self, perf: SupportsAsDict) -> None:
        """Mirror a :class:`~repro.sim.engine.PerfCounters` into gauges.

        Every field of the engine's per-run summary becomes a
        ``collect_*`` gauge (they are per-run readings, not mergeable
        totals), so one exporter pass carries the whole perf story.
        """
        for name, value in perf.as_dict().items():
            self.set_gauge(f"collect_{name}", value)
