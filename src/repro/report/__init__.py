"""Plain-text reporting helpers for examples and benchmarks."""

from repro.report.text import (
    format_count,
    format_percent,
    render_activity_matrix,
    render_cdf,
    render_histogram,
    render_matrix_heatmap,
    render_table,
)

__all__ = [
    "format_count",
    "format_percent",
    "render_activity_matrix",
    "render_cdf",
    "render_histogram",
    "render_matrix_heatmap",
    "render_table",
]
