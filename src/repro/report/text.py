"""Plain-text rendering of tables, histograms, CDFs, and matrices.

The benchmark harness and the examples print the paper's tables and
figure data as aligned ASCII; these helpers keep that formatting in
one place.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ReportError


def format_count(value: float | int) -> str:
    """Human-scale counts: 12345678 -> '12.3M'."""
    value = float(value)
    for magnitude, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= magnitude:
            return f"{value / magnitude:.1f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def format_percent(fraction: float, digits: int = 1) -> str:
    """0.254 -> '25.4%'."""
    return f"{100.0 * fraction:.{digits}f}%"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """An aligned ASCII table with a header separator."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ReportError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def render_histogram(
    labels: Sequence[str], values: Sequence[float], width: int = 40, title: str | None = None
) -> str:
    """Horizontal bar chart of non-negative values."""
    values = [float(v) for v in values]
    if any(v < 0 for v in values):
        raise ReportError("histogram values must be non-negative")
    peak = max(values) if values else 0.0
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        lines.append(f"{label.rjust(label_width)} |{bar} {format_count(value)}")
    return "\n".join(lines)


def render_cdf(
    x: np.ndarray,
    y: np.ndarray,
    points: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
    value_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Summarise a CDF curve by a few quantile anchors."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size == 0:
        raise ReportError("x and y must be non-empty and aligned")
    lines = [title] if title else []
    for point in points:
        index = int(np.searchsorted(y, point))
        index = min(index, x.size - 1)
        lines.append(f"  F(x)={point:4.0%}  at x = " + value_format.format(x[index]))
    return "\n".join(lines)


def render_activity_matrix(matrix: np.ndarray, max_rows: int = 64) -> str:
    """A compact dot-plot of a 256 × days block activity matrix (Fig. 6).

    Rows are downsampled groups of addresses; '#' marks any activity in
    the group on that day.
    """
    if matrix.ndim != 2:
        raise ReportError(f"expected a 2-d matrix, got shape {matrix.shape}")
    rows, days = matrix.shape
    group = max(1, rows // max_rows)
    lines = []
    for start in range(0, rows, group):
        chunk = matrix[start : start + group]
        lines.append(
            "".join("#" if chunk[:, day].any() else "." for day in range(days))
        )
    return "\n".join(lines)


def render_matrix_heatmap(counts: np.ndarray, title: str | None = None) -> str:
    """Render a small 2-d count matrix with density glyphs (Fig. 12)."""
    if counts.ndim != 2:
        raise ReportError("heatmap expects a 2-d matrix")
    glyphs = " .:-=+*#%@"
    peak = counts.max()
    lines = [title] if title else []
    for row in range(counts.shape[0] - 1, -1, -1):
        cells = []
        for column in range(counts.shape[1]):
            value = counts[row, column]
            level = 0 if peak == 0 else int(round((len(glyphs) - 1) * value / peak))
            cells.append(glyphs[level])
        lines.append("|" + "".join(cells) + "|")
    return "\n".join(lines)
