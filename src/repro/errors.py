"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers
can catch one base class.  Each subclass marks a distinct failure
domain (address parsing, dataset consistency, simulation configuration)
so tests and downstream code can assert on the precise kind of failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AddressError(ReproError, ValueError):
    """An IPv4 address or prefix string/integer is malformed or out of range."""


class PrefixError(AddressError):
    """A CIDR prefix is malformed (bad length, host bits set, ...)."""


class DatasetError(ReproError):
    """An activity dataset is inconsistent (unsorted IPs, misaligned columns,
    empty window, mismatched date axes, ...)."""


class ConfigError(ReproError, ValueError):
    """A simulation or analysis configuration value is invalid."""


class ReportError(ReproError, ValueError):
    """A report/rendering input is malformed (misaligned rows, negative
    histogram values, wrong matrix rank).  Derives from ``ValueError``
    so callers validating inputs the builtin way keep working."""


class RegistryError(ReproError):
    """A delegation/registry lookup failed or the table is malformed."""


class RoutingError(ReproError):
    """A routing table or routing series is malformed or misused."""


class ObservabilityError(ReproError):
    """An observability artifact is malformed or misused (bad span or
    metric name, decreasing counter, corrupt or missing manifest)."""


class CollectionError(ReproError):
    """A collection run failed irrecoverably (a shard exhausted its worker
    retries and could not be recovered in-process)."""


class InjectedWorkerFault(CollectionError):
    """A deterministic, seed-keyed fault injected into a shard worker.

    Raised only when a :class:`~repro.sim.engine.FaultInjection` plan is
    active — the testing/CI hook that exercises the retry, degradation,
    and resume machinery of the collection engine."""
