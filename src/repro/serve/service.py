"""The observatory service: one interval per tick, crash-safe.

:class:`ObservatoryService` is the scheduler at the heart of ``repro
serve``.  Each tick it:

1. steps the deterministic engine one window interval
   (:class:`~repro.sim.engine.LiveShardSimulator`) and the routing
   evolution the matching number of days;
2. commits the interval's column to the live store through
   :class:`~repro.core.store.StoreAppender` (manifest-last inside the
   generation, pointer-last across generations);
3. folds the column into the incremental analyses
   (:class:`~repro.core.metrics.IncrementalBlockMetrics`,
   :class:`~repro.core.churn.IncrementalChurn`) — batch twins stay the
   reference spec;
4. rewrites the rolling run manifest and routing RIB beside the store;
5. publishes a rendered metrics snapshot for the scrape endpoint (the
   live :class:`~repro.obs.context.ObsContext` is not thread-safe, so
   the HTTP thread only ever sees finished strings).

**Catch-up**: on start the service replays the already-committed
intervals through the same engine — every stream is keyed per block,
so replay reproduces the committed columns bit for bit (and verifies
that, by default) — then resumes collecting where the store left off.
A run killed at any instant therefore converges to the identical
dataset SHA-256 an uninterrupted run produces.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.core.churn import IncrementalChurn, TransitionChurn
from repro.core.io import save_routing_series
from repro.core.metrics import BlockMetrics, IncrementalBlockMetrics
from repro.core.store import DatasetStore, StoreAppender
from repro.errors import DatasetError
from repro.obs import context as obs_api
from repro.obs.context import ObsContext
from repro.obs.export import to_prometheus
from repro.obs.manifest import build_manifest, manifest_path_for, write_manifest
from repro.routing.series import RoutingSeries
from repro.sim.cdn import RoutingEvolution, plan_collection
from repro.sim.config import SimulationConfig
from repro.sim.engine import LiveShardSimulator
from repro.sim.population import InternetPopulation
from repro.sim.scenario import Scenario

#: Called around every commit: ``(interval, phase)`` with the phases of
#: :data:`repro.core.store.COMMIT_PHASE_FINALIZED` /
#: :data:`~repro.core.store.COMMIT_PHASE_FLIPPED` — the fault-injection
#: seam the kill tests and the CI smoke job hook.
CommitHook = Callable[[int, str], None]

#: Receives ``(exposition_text, status_dict)`` after every interval.
PublishHook = Callable[[str, dict[str, Any]], None]

#: RIB series file name inside a live store root.
ROUTING_SERIES_NAME = "routing.rib.txt"


@dataclass(frozen=True)
class ServeReport:
    """What one :meth:`ObservatoryService.run` invocation did."""

    committed: int
    total: int
    replayed: int
    appended: int
    dataset_sha256: str | None
    manifest_path: str | None
    routing_path: str | None
    complete: bool


class ObservatoryService:
    """A long-lived collector appending one interval per tick."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        num_days: int,
        store_root: str | os.PathLike[str],
        window_days: int = 1,
        shard_blocks: int = 256,
        ctx: ObsContext | None = None,
        commit_hook: CommitHook | None = None,
        publish: PublishHook | None = None,
        pace_seconds: float = 0.0,
        verify_replay: bool = True,
        scenario: "Scenario | None" = None,
    ) -> None:
        if pace_seconds < 0:
            raise DatasetError(f"pace_seconds must be >= 0: {pace_seconds}")
        self._config = config
        self._ctx = ctx if ctx is not None else ObsContext()
        self._window_days = window_days
        self._num_days = num_days
        self._root = os.fspath(store_root)
        self._routing_path = os.path.join(self._root, ROUTING_SERIES_NAME)
        self._commit_hook = commit_hook
        self._publish = publish
        self._pace_seconds = pace_seconds
        self._verify_replay = verify_replay

        self._population = InternetPopulation.build(config)
        plan = plan_collection(self._population, num_days, scenario=scenario)
        self._routing = RoutingEvolution(
            self._population, plan.schedule, plan.noise_rng
        )
        self._simulator = LiveShardSimulator(
            config,
            self._population.blocks,
            num_days,
            window_days,
            plan.directives,
            plan.perturbations,
        )
        self._appender = StoreAppender(
            self._root,
            start=config.start_date,
            window_days=window_days,
            shard_blocks=shard_blocks,
            commit_hook=self._on_commit_phase,
        )
        if self._appender.committed > self.total_intervals:
            raise DatasetError(
                f"live store at {self._root} holds "
                f"{self._appender.committed} intervals but the configured "
                f"horizon is only {self.total_intervals}"
            )
        self._appending_interval = 0
        self._inc_metrics = IncrementalBlockMetrics(window_days)
        self._inc_churn = IncrementalChurn()
        self._replayed = 0
        self._appended = 0
        self._last_active = 0
        self._caught_up = self._appender.committed == 0
        self._ctx.info.update(
            seed=config.seed,
            workers=1,
            num_days=num_days,
            window_days=window_days,
            num_blocks=len(self._population.blocks),
        )
        if scenario is not None:
            self._ctx.info.update(
                scenario=scenario.name, scenario_events=len(scenario.events)
            )

    # -- introspection -----------------------------------------------------

    @property
    def root(self) -> str:
        return self._root

    @property
    def committed(self) -> int:
        """Intervals durably committed to the live store."""
        return self._appender.committed

    @property
    def total_intervals(self) -> int:
        return self._num_days // self._window_days

    @property
    def complete(self) -> bool:
        return self.committed >= self.total_intervals

    @property
    def store(self) -> DatasetStore | None:
        """The committed store (``None`` before the first commit)."""
        return self._appender.store

    def block_metrics(self) -> BlockMetrics:
        """Incremental FD/STU over every interval folded in so far."""
        return self._inc_metrics.result()

    def churn_transitions(self) -> list[TransitionChurn]:
        """Incremental churn over every interval folded in so far."""
        return self._inc_churn.transitions()

    def status(self) -> dict[str, Any]:
        """The ``/status`` snapshot (plain JSON-ready values)."""
        store = self._appender.store
        return {
            "store_root": self._root,
            "committed": self.committed,
            "total": self.total_intervals,
            "complete": self.complete,
            "caught_up": self._caught_up,
            "replayed": self._replayed,
            "appended": self._appended,
            "last_interval_active": self._last_active,
            "addr_days": self._simulator.addr_days,
            "dataset_sha256": None if store is None else store.dataset_sha256,
        }

    # -- internals ---------------------------------------------------------

    def _on_commit_phase(self, phase: str) -> None:
        if self._commit_hook is not None:
            self._commit_hook(self._appending_interval, phase)

    def _next_column(self) -> tuple[NDArray[Any], NDArray[Any]]:
        """One engine step: a window column plus its routing days."""
        ips, hits = self._simulator.advance_window()
        for _ in range(self._window_days):
            self._routing.step()
        return ips, hits

    def _fold(self, ips: NDArray[Any]) -> None:
        self._inc_metrics.update(ips)
        self._inc_churn.update(ips)
        self._last_active = int(ips.size)

    def _record_gauges(self) -> None:
        self._ctx.set_gauge("serve_committed_intervals", self.committed)
        self._ctx.set_gauge("serve_horizon_intervals", self.total_intervals)
        self._ctx.set_gauge(
            "serve_last_interval_active_addresses", self._last_active
        )
        self._ctx.set_gauge("serve_addr_days", self._simulator.addr_days)
        # Deliberately a bool: the exporter must render it 1/0, not
        # "True"/"False" (regression-tested).
        self._ctx.set_gauge("serve_complete", self.complete)

    def _write_artifacts(self, store: DatasetStore) -> None:
        """Rolling manifest + RIB series covering the committed days."""
        manifest = build_manifest(
            self._ctx,
            dataset_path=self._root,
            dataset_sha256=store.dataset_sha256,
        )
        write_manifest(manifest_path_for(self._root), manifest)
        save_routing_series(
            self._routing_path, RoutingSeries(list(self._routing.tables))
        )

    def _publish_snapshot(self) -> None:
        if self._publish is None:
            return
        self._publish(to_prometheus(self._ctx), self.status())

    def catch_up(self) -> int:
        """Replay committed intervals; returns how many were replayed.

        Replay re-steps the engine (and routing) through the committed
        horizon — bit-identical by the per-block stream keying — and,
        with ``verify_replay`` (the default), checks each replayed
        column against the stored one, so a store collected under a
        different configuration fails loudly instead of silently
        forking the dataset.
        """
        already = self._replayed
        committed = self._appender.committed
        store = self._appender.store
        for interval in range(self._replayed + 1, committed + 1):
            ips, hits = self._next_column()
            if self._verify_replay:
                assert store is not None
                stored_ips, stored_hits = store.column_slice(
                    interval - 1, 0, 2**32 - 1
                )
                if not (
                    np.array_equal(ips, stored_ips)
                    and np.array_equal(hits, stored_hits)
                ):
                    raise DatasetError(
                        f"live store at {self._root} does not match the "
                        f"deterministic replay at interval {interval} — was "
                        "it collected with a different configuration?"
                    )
            self._fold(ips)
            self._replayed += 1
            self._ctx.add("serve_intervals_replayed_total")
        self._caught_up = True
        self._record_gauges()
        self._publish_snapshot()
        return self._replayed - already

    def run_one_interval(self) -> DatasetStore:
        """Collect and durably commit exactly one interval."""
        if not self._caught_up:
            raise DatasetError("catch_up() must run before collecting")
        if self.complete:
            raise DatasetError(
                f"live store at {self._root} already covers the full "
                f"{self.total_intervals}-interval horizon"
            )
        ips, hits = self._next_column()
        self._appending_interval = self._appender.committed + 1
        store = self._appender.append(ips, hits)
        self._fold(ips)
        self._appended += 1
        self._ctx.add("serve_intervals_committed_total")
        self._record_gauges()
        self._write_artifacts(store)
        self._publish_snapshot()
        return store

    def run(self, max_intervals: int | None = None) -> ServeReport:
        """Catch up, then collect until the horizon (or *max_intervals*).

        The service loop: already-committed intervals are replayed
        (never re-collected), then one interval is committed per tick,
        pacing ``pace_seconds`` between ticks.  Idempotent on a
        complete store — catch-up simply verifies it and returns.
        """
        with obs_api.activate(self._ctx):
            self.catch_up()
            appended = 0
            while not self.complete:
                if max_intervals is not None and appended >= max_intervals:
                    break
                if appended > 0 and self._pace_seconds > 0:
                    time.sleep(self._pace_seconds)
                self.run_one_interval()
                appended += 1
        store = self._appender.store
        return ServeReport(
            committed=self.committed,
            total=self.total_intervals,
            replayed=self._replayed,
            appended=self._appended,
            dataset_sha256=None if store is None else store.dataset_sha256,
            manifest_path=(
                manifest_path_for(self._root) if store is not None else None
            ),
            routing_path=(
                self._routing_path
                if os.path.exists(self._routing_path)
                else None
            ),
            complete=self.complete,
        )

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "ObservatoryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
