"""Live observatory service: collect, append, analyse, expose.

The batch pipeline (``repro simulate`` → ``repro analyze``) collects a
whole horizon at once.  This package is the long-lived counterpart —
the shape of the paper's actual data-collection framework, which ran
continuously for years: a scheduler collects one window interval at a
time, appends it crash-safely to a live out-of-core store
(:class:`~repro.core.store.StoreAppender`), folds it into incremental
analyses, and exposes the run's metrics on a Prometheus scrape
endpoint while collection is in flight.

Determinism is inherited, not re-implemented: the service drives the
same per-block streams as the batch engine
(:class:`~repro.sim.engine.LiveShardSimulator`), so a killed-and-
restarted service catches up by replaying the committed intervals and
converges on a dataset bit-identical — same SHA-256 — to an
uninterrupted batch run.
"""

from repro.serve.endpoint import MetricsEndpoint
from repro.serve.service import ObservatoryService, ServeReport

__all__ = [
    "MetricsEndpoint",
    "ObservatoryService",
    "ServeReport",
]
