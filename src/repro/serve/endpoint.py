"""The live scrape endpoint: ``/metrics``, ``/status``, ``/healthz``.

A tiny stdlib HTTP server (no new dependencies) that serves cached
snapshots published by the observatory service.  The service publishes
a fully rendered Prometheus exposition string once per committed
interval; the handler only ever copies that string under a lock, so a
scrape never reads — let alone locks — the live
:class:`~repro.obs.context.ObsContext`, which is not thread-safe.

Routes:

- ``GET /metrics`` — the Prometheus text exposition snapshot
  (``text/plain; version=0.0.4``);
- ``GET /status`` — the service's JSON status snapshot;
- ``GET /healthz`` — liveness probe, always ``ok``.

``port=0`` binds an ephemeral port (tests and CI read it back from
:attr:`MetricsEndpoint.port` after :meth:`MetricsEndpoint.start`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ObservabilityError

#: The exposition-format content type Prometheus scrapers expect.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Served before the first interval commits — a comment-only body is a
#: valid (empty) exposition.
_INITIAL_EXPOSITION = "# repro serve: no interval committed yet\n"


class _EndpointServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a back-reference to the endpoint."""

    daemon_threads = True
    endpoint: "MetricsEndpoint"


class _Handler(BaseHTTPRequestHandler):
    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server's required name
        endpoint = self.server.endpoint  # type: ignore[attr-defined]
        assert isinstance(endpoint, MetricsEndpoint)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._respond(
                200, EXPOSITION_CONTENT_TYPE, endpoint.exposition()
            )
        elif path == "/status":
            self._respond(
                200, "application/json; charset=utf-8", endpoint.status_json()
            )
        elif path == "/healthz":
            self._respond(200, "text/plain; charset=utf-8", "ok\n")
        else:
            self._respond(404, "text/plain; charset=utf-8", "not found\n")

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines (the service owns stderr)."""


class MetricsEndpoint:
    """A background scrape endpoint fed by published snapshots.

    Lifecycle: construct, :meth:`start` (binds and spawns the daemon
    server thread), :meth:`publish` after every committed interval,
    :meth:`stop` on shutdown.  All handler reads and service writes go
    through one lock around two immutable strings, so the hot path is
    wait-free in practice and never touches live service state.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._requested_port = port
        self._lock = threading.Lock()
        self._exposition = _INITIAL_EXPOSITION
        self._status_json = json.dumps({"committed": 0}) + "\n"
        self._server: _EndpointServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._server is not None:
            raise ObservabilityError("metrics endpoint already started")
        try:
            server = _EndpointServer((self._host, self._requested_port), _Handler)
        except OSError as exc:
            raise ObservabilityError(
                f"cannot bind metrics endpoint on "
                f"{self._host}:{self._requested_port} ({exc})"
            ) from exc
        server.endpoint = self
        self._server = server
        thread = threading.Thread(
            target=server.serve_forever,
            name="repro-serve-metrics",
            daemon=True,
        )
        thread.start()
        self._thread = thread

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is None:
            raise ObservabilityError("metrics endpoint is not started")
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def publish(self, exposition: str, status: dict[str, Any]) -> None:
        """Swap in a new exposition/status snapshot (service thread)."""
        status_json = json.dumps(status, sort_keys=True) + "\n"
        with self._lock:
            self._exposition = exposition
            self._status_json = status_json

    def exposition(self) -> str:
        with self._lock:
            return self._exposition

    def status_json(self) -> str:
        with self._lock:
            return self._status_json

    def stop(self) -> None:
        server = self._server
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsEndpoint":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
