"""Compressed sets of IPv4 addresses.

An :class:`IPSet` stores a set of addresses as sorted, disjoint,
half-open integer ranges ``[start, stop)`` held in two parallel numpy
arrays.  Scan results ("every address that answered ICMP in October")
and pool definitions ("the CDN-visible addresses of AS 64500") are
range-heavy, so this representation is hundreds of times smaller than
materialised address arrays while still supporting exact union,
intersection, difference, and membership tests.

The class is immutable; every operation returns a new set.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import AddressError
from repro.net.ipv4 import MAX_IPV4, is_valid_ip_int
from repro.net.prefix import Prefix, span_to_prefixes


def _normalise(starts: np.ndarray, stops: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort ranges and merge overlapping/adjacent ones."""
    if starts.size == 0:
        return starts, stops
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    stops = stops[order]
    out_starts = [int(starts[0])]
    out_stops = [int(stops[0])]
    for start, stop in zip(starts[1:], stops[1:]):
        start = int(start)
        stop = int(stop)
        if start <= out_stops[-1]:
            out_stops[-1] = max(out_stops[-1], stop)
        else:
            out_starts.append(start)
            out_stops.append(stop)
    return (
        np.asarray(out_starts, dtype=np.int64),
        np.asarray(out_stops, dtype=np.int64),
    )


class IPSet:
    """An immutable set of IPv4 addresses stored as disjoint ranges."""

    __slots__ = ("_starts", "_stops")

    def __init__(self, ranges: Iterable[tuple[int, int]] = ()) -> None:
        """Build from an iterable of inclusive ``(first, last)`` pairs."""
        starts: list[int] = []
        stops: list[int] = []
        for first, last in ranges:
            if not is_valid_ip_int(first) or not is_valid_ip_int(last):
                raise AddressError(f"bad range bounds: {first!r}, {last!r}")
            if first > last:
                raise AddressError(f"empty range: {first} > {last}")
            starts.append(int(first))
            stops.append(int(last) + 1)
        self._starts, self._stops = _normalise(
            np.asarray(starts, dtype=np.int64), np.asarray(stops, dtype=np.int64)
        )

    # -- constructors ------------------------------------------------

    @classmethod
    def _from_arrays(cls, starts: np.ndarray, stops: np.ndarray) -> "IPSet":
        obj = cls.__new__(cls)
        obj._starts = starts
        obj._stops = stops
        return obj

    @classmethod
    def from_ips(cls, ips: np.ndarray | Iterable[int]) -> "IPSet":
        """Build from individual addresses (duplicates are fine)."""
        arr = np.unique(np.asarray(list(ips) if not isinstance(ips, np.ndarray) else ips, dtype=np.int64))
        if arr.size == 0:
            return cls()
        if arr.size and (arr[0] < 0 or arr[-1] > MAX_IPV4):
            raise AddressError("addresses out of IPv4 range")
        # Split at gaps to form runs.
        gap = np.flatnonzero(np.diff(arr) != 1)
        run_starts = np.concatenate(([0], gap + 1))
        run_stops = np.concatenate((gap, [arr.size - 1]))
        return cls._from_arrays(arr[run_starts].copy(), arr[run_stops] + 1)

    @classmethod
    def from_prefixes(cls, prefixes: Iterable[Prefix]) -> "IPSet":
        """Build from CIDR prefixes."""
        return cls((prefix.first, prefix.last) for prefix in prefixes)

    # -- basic protocol ----------------------------------------------

    def __len__(self) -> int:
        """Number of addresses in the set."""
        return int((self._stops - self._starts).sum())

    def __bool__(self) -> bool:
        return self._starts.size > 0

    def __contains__(self, ip: object) -> bool:
        if not is_valid_ip_int(ip):  # type: ignore[arg-type]
            return False
        pos = int(np.searchsorted(self._starts, int(ip), side="right")) - 1  # type: ignore[arg-type]
        return pos >= 0 and int(ip) < self._stops[pos]  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPSet):
            return NotImplemented
        return np.array_equal(self._starts, other._starts) and np.array_equal(
            self._stops, other._stops
        )

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._stops.tobytes()))

    def __repr__(self) -> str:
        return f"IPSet({len(self)} addresses in {self.num_ranges} ranges)"

    @property
    def num_ranges(self) -> int:
        """Number of stored disjoint ranges."""
        return int(self._starts.size)

    def ranges(self) -> Iterator[tuple[int, int]]:
        """Yield inclusive ``(first, last)`` pairs in address order."""
        for start, stop in zip(self._starts, self._stops):
            yield int(start), int(stop) - 1

    def contains_many(self, ips: np.ndarray) -> np.ndarray:
        """Vectorised membership test; returns a boolean array."""
        arr = np.asarray(ips, dtype=np.int64)
        if self._starts.size == 0:
            return np.zeros(arr.size, dtype=bool)
        pos = np.searchsorted(self._starts, arr, side="right") - 1
        inside = pos >= 0
        inside[inside] &= arr[inside] < self._stops[pos[inside]]
        return inside

    def addresses(self, limit: int | None = 10_000_000) -> np.ndarray:
        """Materialise all member addresses as a ``uint32`` array.

        Guards against accidentally expanding an Internet-scale set;
        pass ``limit=None`` to disable the guard.
        """
        total = len(self)
        if limit is not None and total > limit:
            raise AddressError(f"set too large to materialise: {total} addresses")
        parts = [
            np.arange(start, stop, dtype=np.uint32)
            for start, stop in zip(self._starts, self._stops)
        ]
        if not parts:
            return np.empty(0, dtype=np.uint32)
        return np.concatenate(parts)

    def prefixes(self) -> list[Prefix]:
        """Decompose the set into a minimal list of CIDR prefixes."""
        out: list[Prefix] = []
        for first, last in self.ranges():
            out.extend(span_to_prefixes(first, last))
        return out

    # -- set algebra ---------------------------------------------------

    def union(self, other: "IPSet") -> "IPSet":
        starts = np.concatenate((self._starts, other._starts))
        stops = np.concatenate((self._stops, other._stops))
        return IPSet._from_arrays(*_normalise(starts, stops))

    def intersection(self, other: "IPSet") -> "IPSet":
        out_starts: list[int] = []
        out_stops: list[int] = []
        i = j = 0
        while i < self._starts.size and j < other._starts.size:
            lo = max(self._starts[i], other._starts[j])
            hi = min(self._stops[i], other._stops[j])
            if lo < hi:
                out_starts.append(int(lo))
                out_stops.append(int(hi))
            if self._stops[i] < other._stops[j]:
                i += 1
            else:
                j += 1
        return IPSet._from_arrays(
            np.asarray(out_starts, dtype=np.int64), np.asarray(out_stops, dtype=np.int64)
        )

    def difference(self, other: "IPSet") -> "IPSet":
        out_starts: list[int] = []
        out_stops: list[int] = []
        j = 0
        for start, stop in zip(self._starts, self._stops):
            cursor = int(start)
            stop = int(stop)
            while j < other._starts.size and other._stops[j] <= cursor:
                j += 1
            k = j
            while cursor < stop:
                if k >= other._starts.size or other._starts[k] >= stop:
                    out_starts.append(cursor)
                    out_stops.append(stop)
                    break
                if other._starts[k] > cursor:
                    out_starts.append(cursor)
                    out_stops.append(int(other._starts[k]))
                cursor = max(cursor, int(other._stops[k]))
                k += 1
        return IPSet._from_arrays(
            np.asarray(out_starts, dtype=np.int64), np.asarray(out_stops, dtype=np.int64)
        )

    def __or__(self, other: "IPSet") -> "IPSet":
        return self.union(other)

    def __and__(self, other: "IPSet") -> "IPSet":
        return self.intersection(other)

    def __sub__(self, other: "IPSet") -> "IPSet":
        return self.difference(other)

    def isdisjoint(self, other: "IPSet") -> bool:
        return not self.intersection(other)

    def issubset(self, other: "IPSet") -> bool:
        return not self.difference(other)
