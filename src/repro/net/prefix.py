"""CIDR prefixes and prefix algebra.

A :class:`Prefix` is an immutable ``(network, masklen)`` pair with the
host bits forced to zero.  Besides the usual containment and
subnet/supernet operations, this module provides
:func:`smallest_covering_prefix`, the operation at the heart of the
paper's event-size analysis (Fig. 5b): given a set of addresses that
changed state together, find the smallest CIDR block that contains all
of them.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import PrefixError
from repro.net.ipv4 import MAX_IPV4, format_ip, is_valid_ip_int, parse_ip


def _mask_for(masklen: int) -> int:
    if masklen == 0:
        return 0
    return (0xFFFFFFFF << (32 - masklen)) & 0xFFFFFFFF


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR prefix, e.g. ``192.0.2.0/24``.

    Ordering is lexicographic on ``(network, masklen)``, which groups
    nested prefixes next to their covering prefix — convenient for the
    sorted sweeps used in aggregation code.
    """

    network: int
    masklen: int

    def __post_init__(self) -> None:
        if not is_valid_ip_int(self.network):
            raise PrefixError(f"bad network address: {self.network!r}")
        if not isinstance(self.masklen, int) or not 0 <= self.masklen <= 32:
            raise PrefixError(f"bad mask length: {self.masklen!r}")
        if self.network & ~_mask_for(self.masklen) & 0xFFFFFFFF:
            raise PrefixError(
                f"host bits set: {format_ip(self.network)}/{self.masklen}"
            )

    # -- constructors ------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning /32).

        >>> Prefix.parse("192.0.2.0/24").num_addresses
        256
        >>> str(Prefix.parse("10.0.0.1"))
        '10.0.0.1/32'
        """
        if "/" in text:
            addr_part, _, len_part = text.partition("/")
            try:
                masklen = int(len_part)
            except ValueError as exc:
                raise PrefixError(f"bad mask length in {text!r}") from exc
            return cls(parse_ip(addr_part), masklen)
        return cls(parse_ip(text), 32)

    @classmethod
    def from_ip(cls, ip: int, masklen: int) -> "Prefix":
        """The length-*masklen* prefix containing address *ip*."""
        if not is_valid_ip_int(ip):
            raise PrefixError(f"bad address: {ip!r}")
        if not 0 <= masklen <= 32:
            raise PrefixError(f"bad mask length: {masklen!r}")
        return cls(int(ip) & _mask_for(masklen), masklen)

    # -- basic properties --------------------------------------------

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered (2**(32-masklen))."""
        return 1 << (32 - self.masklen)

    @property
    def first(self) -> int:
        """Lowest address in the prefix (the network address)."""
        return self.network

    @property
    def last(self) -> int:
        """Highest address in the prefix (the broadcast address)."""
        return self.network + self.num_addresses - 1

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Prefix):
            return self.contains_prefix(item)
        if is_valid_ip_int(item):  # type: ignore[arg-type]
            return self.first <= int(item) <= self.last  # type: ignore[arg-type]
        return False

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if *other* is fully inside (or equal to) this prefix."""
        return other.masklen >= self.masklen and (
            other.network & _mask_for(self.masklen)
        ) == self.network

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.masklen}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    # -- algebra -----------------------------------------------------

    def supernet(self, new_masklen: int | None = None) -> "Prefix":
        """The covering prefix with a shorter mask (default: one bit shorter)."""
        if new_masklen is None:
            new_masklen = self.masklen - 1
        if not 0 <= new_masklen <= self.masklen:
            raise PrefixError(
                f"supernet mask {new_masklen} not shorter than /{self.masklen}"
            )
        return Prefix(self.network & _mask_for(new_masklen), new_masklen)

    def subnets(self, new_masklen: int | None = None) -> Iterator["Prefix"]:
        """Yield the subdivision of this prefix into longer-mask prefixes."""
        if new_masklen is None:
            new_masklen = self.masklen + 1
        if not self.masklen <= new_masklen <= 32:
            raise PrefixError(
                f"subnet mask {new_masklen} not longer than /{self.masklen}"
            )
        step = 1 << (32 - new_masklen)
        for base in range(self.first, self.last + 1, step):
            yield Prefix(base, new_masklen)

    def addresses(self) -> np.ndarray:
        """All covered addresses as a ``uint32`` array (careful with short masks)."""
        if self.masklen < 16:
            raise PrefixError(
                f"refusing to materialise {self}: {self.num_addresses} addresses"
            )
        return np.arange(self.first, self.last + 1, dtype=np.uint32)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)


def smallest_covering_prefix(ips: Iterable[int] | np.ndarray) -> Prefix:
    """Smallest CIDR prefix containing every address in *ips*.

    This implements the event-size attribution of the paper (Sec. 4.2,
    Fig. 5b): a set of addresses that flipped state together is tagged
    with the mask of the smallest prefix covering all of them.  For a
    single address the result is a /32; for addresses spanning the
    whole space it is 0.0.0.0/0.

    The smallest covering prefix of ``lo`` and ``hi`` is determined by
    the highest differing bit between them: every bit above it is a
    shared prefix, everything at or below must be inside the block.

    >>> from repro.net.ipv4 import parse_ip
    >>> base = parse_ip("10.2.3.0")
    >>> str(smallest_covering_prefix([base, base + 255]))
    '10.2.3.0/24'
    """
    arr = np.asarray(list(ips) if not isinstance(ips, np.ndarray) else ips)
    if arr.size == 0:
        raise PrefixError("cannot cover an empty set of addresses")
    lo = int(arr.min())
    hi = int(arr.max())
    if not is_valid_ip_int(lo) or not is_valid_ip_int(hi):
        raise PrefixError(f"addresses out of range: {lo!r}..{hi!r}")
    diff = lo ^ hi
    masklen = 32 - diff.bit_length()
    return Prefix.from_ip(lo, masklen)


def common_prefix_length(a: int, b: int) -> int:
    """Number of leading bits shared by two addresses (0..32)."""
    if not is_valid_ip_int(a) or not is_valid_ip_int(b):
        raise PrefixError(f"bad addresses: {a!r}, {b!r}")
    return 32 - (int(a) ^ int(b)).bit_length()


def coalesce(prefixes: Iterable[Prefix]) -> list[Prefix]:
    """Merge a collection of prefixes into a minimal disjoint covering list.

    Nested prefixes are absorbed by their covers and adjacent sibling
    prefixes are merged into their supernet, repeatedly, until a fixed
    point.  The result is sorted and pairwise non-overlapping.
    """
    items = sorted(set(prefixes))
    # Drop prefixes covered by an earlier (shorter or equal) prefix.
    pruned: list[Prefix] = []
    for pfx in items:
        if pruned and pruned[-1].contains_prefix(pfx):
            continue
        pruned.append(pfx)
    # Merge sibling pairs bottom-up until stable.
    changed = True
    while changed:
        changed = False
        merged: list[Prefix] = []
        i = 0
        while i < len(pruned):
            current = pruned[i]
            if (
                i + 1 < len(pruned)
                and current.masklen == pruned[i + 1].masklen
                and current.masklen > 0
                and current.supernet() == pruned[i + 1].supernet()
            ):
                merged.append(current.supernet())
                i += 2
                changed = True
            else:
                merged.append(current)
                i += 1
        pruned = merged
    return pruned


def span_to_prefixes(first: int, last: int) -> list[Prefix]:
    """Decompose the inclusive address range ``[first, last]`` into a
    minimal list of CIDR prefixes, in address order.

    This is the classic range-to-CIDR algorithm: repeatedly take the
    largest aligned block that starts at ``first`` and does not run
    past ``last``.
    """
    if not is_valid_ip_int(first) or not is_valid_ip_int(last):
        raise PrefixError(f"bad range bounds: {first!r}, {last!r}")
    if first > last:
        raise PrefixError(f"empty range: {first} > {last}")
    out: list[Prefix] = []
    cursor = int(first)
    last = int(last)
    while cursor <= last:
        # Largest power-of-two block aligned at cursor...
        align_bits = (cursor & -cursor).bit_length() - 1 if cursor else 32
        # ...but no larger than the remaining span.
        span_bits = (last - cursor + 1).bit_length() - 1
        bits = min(align_bits, span_bits)
        out.append(Prefix(cursor, 32 - bits))
        cursor += 1 << bits
        if cursor > MAX_IPV4:
            break
    return out
