"""IPv4 addressing substrate.

This subpackage provides the low-level machinery every other part of
the library builds on:

- :mod:`repro.net.ipv4` — addresses as unsigned 32-bit integers with
  parsing, formatting, and vectorised helpers.
- :mod:`repro.net.prefix` — CIDR prefixes with subnet/supernet algebra
  and the smallest-covering-prefix operation used for event-size
  attribution (paper Fig. 5b).
- :mod:`repro.net.trie` — a binary radix trie for longest-prefix match
  (IP → origin AS, IP → delegation record).
- :mod:`repro.net.sets` — compressed sets of IPv4 ranges with exact
  set algebra, used to hold scan results and active-address pools.
"""

from repro.net.ipv4 import (
    MAX_IPV4,
    block_of,
    blocks_of,
    format_ip,
    format_ips,
    ip_distance,
    is_valid_ip_int,
    parse_ip,
    parse_ips,
)
from repro.net.prefix import (
    Prefix,
    coalesce,
    common_prefix_length,
    smallest_covering_prefix,
    span_to_prefixes,
)
from repro.net.sets import IPSet
from repro.net.trie import PrefixTrie

__all__ = [
    "MAX_IPV4",
    "IPSet",
    "Prefix",
    "PrefixTrie",
    "block_of",
    "blocks_of",
    "coalesce",
    "common_prefix_length",
    "format_ip",
    "format_ips",
    "ip_distance",
    "is_valid_ip_int",
    "parse_ip",
    "parse_ips",
    "smallest_covering_prefix",
    "span_to_prefixes",
]
