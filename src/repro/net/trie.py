"""Binary radix trie for longest-prefix match.

Routing tables and delegation tables both answer the same question:
*which is the most specific prefix covering this address, and what
value is attached to it?*  :class:`PrefixTrie` answers it in O(32) per
address, and offers a vectorised :meth:`PrefixTrie.lookup_many` for the
bulk IP→AS / IP→registry joins the analyses perform over millions of
addresses.

The vectorised path does not walk the trie; it compiles the current
prefix set into per-masklength sorted arrays and resolves each address
with a masked binary search from the longest mask down.  The compiled
index is invalidated on mutation and rebuilt lazily.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.errors import PrefixError
from repro.net.prefix import Prefix


class _Node:
    """One bit-level trie node. ``value`` is set only on prefix ends."""

    __slots__ = ("children", "has_value", "value")

    def __init__(self) -> None:
        self.children: list[_Node | None] = [None, None]
        self.has_value = False
        self.value: Any = None


class PrefixTrie:
    """Longest-prefix-match table from :class:`Prefix` to arbitrary values.

    >>> trie = PrefixTrie()
    >>> trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
    >>> trie.insert(Prefix.parse("10.1.0.0/16"), "fine")
    >>> trie.lookup(Prefix.parse("10.1.2.3").network)
    (Prefix('10.1.0.0/16'), 'fine')
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0
        self._index: dict[int, tuple[np.ndarray, list[Any]]] | None = None

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._walk(prefix)
        return node is not None and node.has_value

    # -- mutation ----------------------------------------------------

    def insert(self, prefix: Prefix, value: Any) -> None:
        """Insert or replace the value attached to *prefix*."""
        node = self._root
        for bit_pos in range(prefix.masklen):
            bit = (prefix.network >> (31 - bit_pos)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]  # type: ignore[assignment]
        if not node.has_value:
            self._size += 1
        node.has_value = True
        node.value = value
        self._index = None

    def remove(self, prefix: Prefix) -> None:
        """Remove *prefix*; raises :class:`PrefixError` if absent."""
        node = self._walk(prefix)
        if node is None or not node.has_value:
            raise PrefixError(f"prefix not in trie: {prefix}")
        node.has_value = False
        node.value = None
        self._size -= 1
        self._index = None

    # -- point lookups -----------------------------------------------

    def _walk(self, prefix: Prefix) -> _Node | None:
        node = self._root
        for bit_pos in range(prefix.masklen):
            bit = (prefix.network >> (31 - bit_pos)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node

    def get(self, prefix: Prefix, default: Any = None) -> Any:
        """Exact-match lookup of a prefix's value."""
        node = self._walk(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def lookup(self, ip: int) -> tuple[Prefix, Any] | None:
        """Longest-prefix match for a single address.

        Returns ``(matched_prefix, value)`` or ``None`` if no prefix
        covers the address.
        """
        ip = int(ip)
        node = self._root
        best: tuple[int, Any] | None = (0, node.value) if node.has_value else None
        for bit_pos in range(32):
            bit = (ip >> (31 - bit_pos)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (bit_pos + 1, node.value)
        if best is None:
            return None
        masklen, value = best
        return Prefix.from_ip(ip, masklen), value

    # -- iteration ---------------------------------------------------

    def items(self) -> Iterator[tuple[Prefix, Any]]:
        """Yield ``(prefix, value)`` pairs in address order."""

        def recurse(node: _Node, network: int, depth: int) -> Iterator[tuple[Prefix, Any]]:
            if node.has_value:
                yield Prefix(network, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from recurse(child, network | (bit << (31 - depth)), depth + 1)

        yield from recurse(self._root, 0, 0)

    def prefixes(self) -> list[Prefix]:
        """All stored prefixes in address order."""
        return [prefix for prefix, _ in self.items()]

    # -- bulk lookup ---------------------------------------------------

    def _compile(self) -> dict[int, tuple[np.ndarray, list[Any]]]:
        """Build per-masklength sorted network arrays for bulk lookup."""
        by_masklen: dict[int, list[tuple[int, Any]]] = {}
        for prefix, value in self.items():
            by_masklen.setdefault(prefix.masklen, []).append((prefix.network, value))
        index: dict[int, tuple[np.ndarray, list[Any]]] = {}
        for masklen, pairs in by_masklen.items():
            pairs.sort(key=lambda pair: pair[0])
            networks = np.array([network for network, _ in pairs], dtype=np.uint32)
            values = [value for _, value in pairs]
            index[masklen] = (networks, values)
        return index

    def lookup_many(self, ips: np.ndarray, default: Any = None) -> list[Any]:
        """Longest-prefix match for an array of addresses.

        Returns a list of matched values (``default`` where no prefix
        covers the address), aligned with the input order.
        """
        if self._index is None:
            self._index = self._compile()
        arr = np.asarray(ips, dtype=np.uint32)
        out: list[Any] = [default] * arr.size
        unresolved = np.ones(arr.size, dtype=bool)
        for masklen in sorted(self._index, reverse=True):
            if not unresolved.any():
                break
            networks, values = self._index[masklen]
            if masklen == 0:
                candidates = np.zeros(arr.size, dtype=np.uint32)
            else:
                mask = np.uint32((0xFFFFFFFF << (32 - masklen)) & 0xFFFFFFFF)
                candidates = arr & mask
            pos = np.searchsorted(networks, candidates)
            hits = (pos < networks.size) & unresolved
            hit_idx = np.flatnonzero(hits)
            hit_idx = hit_idx[networks[pos[hit_idx]] == candidates[hit_idx]]
            for i in hit_idx:
                out[i] = values[pos[i]]
            unresolved[hit_idx] = False
        return out

    def lookup_many_int(self, ips: np.ndarray, default: int = -1) -> np.ndarray:
        """Like :meth:`lookup_many` but for integer values, returned as
        an ``int64`` array.  This is the fast path for IP→ASN joins:
        no per-address Python objects are created.
        """
        if self._index is None:
            self._index = self._compile()
        arr = np.asarray(ips, dtype=np.uint32)
        out = np.full(arr.size, default, dtype=np.int64)
        unresolved = np.ones(arr.size, dtype=bool)
        for masklen in sorted(self._index, reverse=True):
            if not unresolved.any():
                break
            networks, values = self._index[masklen]
            value_arr = np.asarray(values, dtype=np.int64)
            if masklen == 0:
                candidates = np.zeros(arr.size, dtype=np.uint32)
            else:
                mask = np.uint32((0xFFFFFFFF << (32 - masklen)) & 0xFFFFFFFF)
                candidates = arr & mask
            pos = np.searchsorted(networks, candidates)
            hit_idx = np.flatnonzero((pos < networks.size) & unresolved)
            hit_idx = hit_idx[networks[pos[hit_idx]] == candidates[hit_idx]]
            out[hit_idx] = value_arr[pos[hit_idx]]
            unresolved[hit_idx] = False
        return out
