"""IPv4 addresses as unsigned 32-bit integers.

The whole library represents addresses as plain Python ints (or
``numpy.uint32`` arrays for bulk work) in the range ``[0, 2**32)``.
That choice keeps set algebra, sorting, and prefix math cheap: a /24
block is a contiguous run of 256 integers, the covering /24 of an
address is ``ip & ~0xFF``, and numpy handles millions of addresses
without per-object overhead.

This module deliberately does not depend on :mod:`ipaddress` from the
standard library; the hot paths here are called per-address across
multi-million address datasets and must stay allocation-free.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import AddressError

#: Largest valid IPv4 address as an integer (255.255.255.255).
MAX_IPV4 = 2**32 - 1

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def is_valid_ip_int(value: int) -> bool:
    """Return ``True`` if *value* is an int within the IPv4 range.

    Booleans are rejected even though they subclass :class:`int`,
    because an address that prints as ``True`` is invariably a bug.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        return False
    return 0 <= int(value) <= MAX_IPV4


def parse_ip(text: str) -> int:
    """Parse a dotted-quad string into an integer address.

    >>> parse_ip("192.0.2.1")
    3221225985

    Raises :class:`~repro.errors.AddressError` on malformed input,
    including octets above 255 and leading/trailing whitespace.
    """
    if not isinstance(text, str):
        raise AddressError(f"expected str, got {type(text).__name__}")
    match = _DOTTED_QUAD.match(text)
    if match is None:
        raise AddressError(f"malformed IPv4 address: {text!r}")
    octets = [int(part) for part in match.groups()]
    if any(octet > 255 for octet in octets):
        raise AddressError(f"octet out of range in IPv4 address: {text!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def format_ip(value: int) -> str:
    """Format an integer address as a dotted quad.

    >>> format_ip(3221225985)
    '192.0.2.1'
    """
    if not is_valid_ip_int(value):
        raise AddressError(f"not a valid IPv4 integer: {value!r}")
    value = int(value)
    return f"{value >> 24 & 0xFF}.{value >> 16 & 0xFF}.{value >> 8 & 0xFF}.{value & 0xFF}"


def parse_ips(texts: list[str] | tuple[str, ...]) -> np.ndarray:
    """Parse many dotted-quad strings into a ``uint32`` array."""
    return np.array([parse_ip(text) for text in texts], dtype=np.uint32)


def format_ips(values: np.ndarray) -> list[str]:
    """Format a ``uint32`` array of addresses as dotted quads."""
    return [format_ip(int(value)) for value in np.asarray(values).ravel()]


def ip_distance(a: int, b: int) -> int:
    """Absolute numeric distance between two addresses."""
    if not is_valid_ip_int(a) or not is_valid_ip_int(b):
        raise AddressError(f"not valid IPv4 integers: {a!r}, {b!r}")
    return abs(int(a) - int(b))


def block_of(value: int, masklen: int = 24) -> int:
    """Return the base address of the length-*masklen* block containing *value*.

    ``block_of(ip, 24)`` is the canonical /24 key used throughout the
    block-level analyses.
    """
    if not is_valid_ip_int(value):
        raise AddressError(f"not a valid IPv4 integer: {value!r}")
    if not 0 <= masklen <= 32:
        raise AddressError(f"mask length out of range: {masklen}")
    if masklen == 0:
        return 0
    mask = (0xFFFFFFFF << (32 - masklen)) & 0xFFFFFFFF
    return int(value) & mask


def blocks_of(values: np.ndarray, masklen: int = 24) -> np.ndarray:
    """Vectorised :func:`block_of` over a ``uint32`` array."""
    if not 0 <= masklen <= 32:
        raise AddressError(f"mask length out of range: {masklen}")
    arr = np.asarray(values, dtype=np.uint32)
    if masklen == 0:
        return np.zeros_like(arr)
    mask = np.uint32((0xFFFFFFFF << (32 - masklen)) & 0xFFFFFFFF)
    return arr & mask
